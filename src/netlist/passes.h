#ifndef GFR_NETLIST_PASSES_H
#define GFR_NETLIST_PASSES_H

// Logic-synthesis passes over the netlist IR.
//
// These passes model what the paper's synthesis tool (Xilinx XST) is free to
// do with the *unparenthesised* coefficient equations of Table IV:
//
//   * dce                      — drop logic not reachable from an output
//   * balance_xor_trees        — rebuild XOR trees depth-optimally, preserving
//                                shared (multi-fanout) subterms as units
//   * extract_common_xor_pairs — greedy "fast-extract": repeatedly factor the
//                                XOR pair occurring in the most coefficient
//                                equations into a shared gate (the paper's
//                                "terms that appear in more than one
//                                coefficient could be shared")
//   * synthesize               — the pipeline used by the FPGA flow when a
//                                netlist is mapped with "synthesis freedom"
//
// All passes are pure: they return a new netlist and never mutate the input.
// Every pass preserves functional equivalence (asserted by the test suite).

#include "netlist/netlist.h"

namespace gfr::netlist {

struct SynthOptions {
    bool flatten_anf = false;   ///< collapse each output to its flat XOR-of-ANDs
    bool group_cones = false;   ///< regroup ANF leaves by shared output signature
    bool extract_pairs = true;  ///< run fast-extract XOR-pair sharing
    int cse_min_count = 2;      ///< extract only pairs appearing in >= this many sums
    bool balance = true;        ///< rebuild XOR trees depth-optimally
};

/// Rebuild only the logic reachable from outputs.  Inputs are preserved in
/// order even when unused (multiplier verification relies on input order).
Netlist dce(const Netlist& nl);

/// Depth-optimal rebuild of every XOR tree.  Trees are flattened through
/// single-fanout XOR nodes (multi-fanout nodes stay shared units) and rebuilt
/// height-aware (Huffman on leaf depths, so a deep shared unit sits near the
/// root); duplicate leaves cancel mod 2.
Netlist balance_xor_trees(const Netlist& nl);

/// Collapse every output to its flat reduced ANF — an XOR of AND-level
/// leaves — erasing all intermediate XOR structure, then rebuild each output
/// as one complete tree over id-sorted leaves.  This models what a synthesis
/// tool does with the paper's unparenthesised Table IV equations: the source
/// structure is gone and only the Boolean sum remains; identical subtrees
/// across outputs still unify through structural hashing.
Netlist flatten_to_anf(const Netlist& nl);

/// Flatten to reduced ANF, then group leaves by *output signature*: leaves
/// feeding exactly the same set of outputs form one shared XOR unit (built
/// once, used by all of them).  On the paper's multipliers this transform
/// recovers the S_i/T_i function structure from the flat Table IV equations
/// — every product of T_i feeds precisely the coefficients selected by the
/// reduction matrix, so T_i reappears as one group.  A generic, structural
/// stand-in for the sharing a synthesis tool discovers in flat equations.
Netlist group_common_cones(const Netlist& nl);

/// Greedy common-pair extraction across output equations, followed by a
/// balanced rebuild.  Leaves are the non-XOR nodes and the shared XOR
/// subterms; only leaves appearing in at least two output equations are
/// candidates for pairing.
Netlist extract_common_xor_pairs(const Netlist& nl);

/// As above with an explicit occurrence threshold: only pairs appearing in
/// at least `min_count` output sums are extracted (higher thresholds share
/// only strongly-reused pairs and fragment the netlist less).
Netlist extract_common_xor_pairs(const Netlist& nl, int min_count);

/// The "synthesis freedom" pipeline: optional ANF flattening, optional pair
/// extraction, optional balancing, then DCE.
Netlist synthesize(const Netlist& nl, const SynthOptions& options);

}  // namespace gfr::netlist

#endif  // GFR_NETLIST_PASSES_H
