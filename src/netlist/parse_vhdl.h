#ifndef GFR_NETLIST_PARSE_VHDL_H
#define GFR_NETLIST_PARSE_VHDL_H

// Structural VHDL ingestion — the inverse of emit_vhdl(), and the entry
// point for reverse engineering third-party exports: a netlist read back
// this way carries only whatever port names the VHDL had, which
// acv::reverse_engineer() then treats as anonymous.

#include "netlist/netlist.h"

#include <string>

namespace gfr::netlist {

/// Parse the structural subset emit_vhdl() produces (and hand-written
/// equivalents): `in`/`out` std_logic port declarations plus concurrent
/// assignments of the forms `s <= a and b;`, `s <= a xor b;`, `s <= '0';`
/// and `s <= a;`.  Declaration order of the ports is preserved.  Anything
/// outside that subset — or a malformed/incomplete design — throws
/// std::invalid_argument with the offending line number.
Netlist parse_vhdl(const std::string& text);

}  // namespace gfr::netlist

#endif  // GFR_NETLIST_PARSE_VHDL_H
