#include "netlist/passes.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <queue>
#include <tuple>
#include <unordered_map>
#include <vector>

namespace gfr::netlist {

namespace {

/// Copies all inputs of `src` into `dst` (same order) and returns the
/// old-id -> new-id map seeded with those inputs.
std::vector<NodeId> seed_inputs(const Netlist& src, Netlist& dst) {
    std::vector<NodeId> memo(src.node_count(), kInvalidNode);
    for (const auto& port : src.inputs()) {
        memo[port.node] = dst.add_input(port.name);
    }
    return memo;
}

/// Plain structural rebuild (no restructuring) of `id` into `dst`.
NodeId rebuild_plain(const Netlist& src, Netlist& dst, std::vector<NodeId>& memo,
                     NodeId id) {
    if (memo[id] != kInvalidNode) {
        return memo[id];
    }
    const Node& n = src.node(id);
    NodeId result = kInvalidNode;
    switch (n.kind) {
        case GateKind::Input:
            result = memo[id];  // seeded; unreachable here
            break;
        case GateKind::Const0:
            result = dst.const0();
            break;
        case GateKind::And2:
            result = dst.make_and(rebuild_plain(src, dst, memo, n.a),
                                  rebuild_plain(src, dst, memo, n.b));
            break;
        case GateKind::Xor2:
            result = dst.make_xor(rebuild_plain(src, dst, memo, n.a),
                                  rebuild_plain(src, dst, memo, n.b));
            break;
    }
    memo[id] = result;
    return result;
}

/// Collect the leaves of the XOR tree rooted at `root`, flattening through
/// XOR nodes that satisfy `expand(id)`; the root itself is always expanded
/// if it is an XOR.  Duplicate leaves cancel pairwise (x ^ x = 0).
template <typename ExpandPred>
std::vector<NodeId> xor_leaves(const Netlist& src, NodeId root, ExpandPred expand) {
    std::vector<NodeId> leaves;
    std::vector<NodeId> stack{root};
    while (!stack.empty()) {
        const NodeId id = stack.back();
        stack.pop_back();
        const Node& n = src.node(id);
        const bool is_xor = n.kind == GateKind::Xor2;
        if (is_xor && (id == root || expand(id))) {
            stack.push_back(n.a);
            stack.push_back(n.b);
        } else {
            leaves.push_back(id);
        }
    }
    std::sort(leaves.begin(), leaves.end());
    // Cancel equal pairs mod 2.
    std::vector<NodeId> out;
    for (std::size_t i = 0; i < leaves.size();) {
        std::size_t j = i;
        while (j < leaves.size() && leaves[j] == leaves[i]) {
            ++j;
        }
        if ((j - i) % 2 == 1) {
            out.push_back(leaves[i]);
        }
        i = j;
    }
    return out;
}

std::uint64_t pair_key(NodeId u, NodeId v) {
    if (u > v) {
        std::swap(u, v);
    }
    return (static_cast<std::uint64_t>(u) << 32U) | v;
}

/// Builds XOR trees of minimum depth over leaves of mixed heights: Huffman
/// on (xor-depth, insertion order).  Tracks xor-depths of the growing output
/// netlist lazily so repeated calls stay linear overall.
class MinDepthXorBuilder {
public:
    explicit MinDepthXorBuilder(Netlist& nl) : nl_{&nl} {}

    NodeId build(const std::vector<NodeId>& leaves) {
        if (leaves.empty()) {
            return nl_->const0();
        }
        sync();
        using Item = std::tuple<int, int, NodeId>;  // (depth, tiebreak, node)
        const auto cmp = [](const Item& a, const Item& b) {
            return std::tie(std::get<0>(a), std::get<1>(a)) >
                   std::tie(std::get<0>(b), std::get<1>(b));
        };
        std::priority_queue<Item, std::vector<Item>, decltype(cmp)> heap{cmp};
        int seq = 0;
        for (const NodeId leaf : leaves) {
            heap.emplace(depth_[leaf], seq++, leaf);
        }
        while (heap.size() > 1) {
            const auto [da, sa, na] = heap.top();
            heap.pop();
            const auto [db, sb, nb] = heap.top();
            heap.pop();
            const NodeId combined = nl_->make_xor(na, nb);
            heap.emplace(std::max(da, db) + 1, seq++, combined);
        }
        const NodeId root = std::get<2>(heap.top());
        sync();
        return root;
    }

private:
    void sync() {
        for (NodeId id = static_cast<NodeId>(depth_.size()); id < nl_->node_count();
             ++id) {
            const Node& n = nl_->node(id);
            int d = 0;
            switch (n.kind) {
                case GateKind::Input:
                case GateKind::Const0:
                    break;
                case GateKind::And2:
                    d = std::max(depth_[n.a], depth_[n.b]);
                    break;
                case GateKind::Xor2:
                    d = 1 + std::max(depth_[n.a], depth_[n.b]);
                    break;
            }
            depth_.push_back(d);
        }
    }

    Netlist* nl_;
    std::vector<int> depth_;
};

/// Builds XOR trees that map *perfectly* onto K-input LUTs: leaves are
/// greedily packed into chunks whose combined input support stays within 6
/// wires (one LUT), then chunk roots are packed 6-at-a-time, 6-ary-Huffman
/// style (lowest LUT level first).  This is technology-aware tree
/// construction — the restructuring a LUT-oriented synthesis tool performs
/// on flat XOR equations.
class LutAwareXorBuilder {
public:
    explicit LutAwareXorBuilder(Netlist& nl) : nl_{&nl} {}

    static constexpr std::size_t kLutInputs = 6;

    NodeId build(const std::vector<NodeId>& leaves) {
        if (leaves.empty()) {
            return nl_->const0();
        }
        // (lut level, insertion order, node); re-sorted by level each round.
        std::vector<std::tuple<int, int, NodeId>> items;
        items.reserve(leaves.size());
        int seq = 0;
        for (const NodeId leaf : leaves) {
            items.emplace_back(level_of(leaf), seq++, leaf);
        }
        while (items.size() > 1) {
            std::sort(items.begin(), items.end());
            // Seed the chunk with the shallowest item, then repeatedly absorb
            // the remaining item sharing the most wires with the chunk (e.g.
            // several partial products over the same few a/b wires land in
            // one LUT), while the union support fits.
            std::vector<NodeId> chunk{std::get<2>(items[0])};
            std::vector<NodeId> support = effective_support(std::get<2>(items[0]));
            int chunk_level = std::get<0>(items[0]);
            std::vector<std::size_t> taken{0};
            std::vector<bool> in_chunk(items.size(), false);
            in_chunk[0] = true;
            while (support.size() < kLutInputs) {
                std::size_t best = items.size();
                int best_overlap = -1;
                std::vector<NodeId> best_merged;
                for (std::size_t i = 1; i < items.size(); ++i) {
                    if (in_chunk[i]) {
                        continue;
                    }
                    const auto node_support = effective_support(std::get<2>(items[i]));
                    auto merged = merge_supports(support, node_support);
                    if (merged.size() > kLutInputs) {
                        continue;
                    }
                    const int overlap = static_cast<int>(support.size()) +
                                        static_cast<int>(node_support.size()) -
                                        static_cast<int>(merged.size());
                    if (overlap > best_overlap) {
                        best_overlap = overlap;
                        best = i;
                        best_merged = std::move(merged);
                    }
                }
                if (best == items.size()) {
                    break;  // nothing else fits
                }
                in_chunk[best] = true;
                support = std::move(best_merged);
                chunk.push_back(std::get<2>(items[best]));
                chunk_level = std::max(chunk_level, std::get<0>(items[best]));
                taken.push_back(best);
            }
            std::sort(taken.begin(), taken.end());
            NodeId root = kInvalidNode;
            int root_level = 0;
            if (chunk.size() == 1) {
                // Nothing fits beside it (an already-wide wire): pair the two
                // shallowest wires instead so the loop always progresses.
                root = nl_->make_xor(std::get<2>(items[0]), std::get<2>(items[1]));
                root_level =
                    std::max(std::get<0>(items[0]), std::get<0>(items[1])) + 1;
                taken.push_back(1);
            } else {
                root = nl_->make_xor_tree(chunk, TreeShape::Balanced);
                root_level = chunk_level + 1;
                support_cache_[root] = support;  // chunk root cone fits one LUT
            }
            level_cache_[root] = root_level;
            // Remove consumed items (indices ascending), append the new root.
            for (std::size_t t = taken.size(); t-- > 0;) {
                items.erase(items.begin() + static_cast<std::ptrdiff_t>(taken[t]));
            }
            items.emplace_back(root_level, seq++, root);
        }
        return std::get<2>(items[0]);
    }

private:
    /// Input wires a cone needs if absorbed into a LUT; {self} when the cone
    /// is already wider than one LUT (it becomes a LUT output wire).
    std::vector<NodeId> effective_support(NodeId id) {
        const auto it = support_cache_.find(id);
        if (it != support_cache_.end()) {
            return it->second;
        }
        const Node& n = nl_->node(id);
        std::vector<NodeId> result;
        switch (n.kind) {
            case GateKind::Input:
                result = {id};
                break;
            case GateKind::Const0:
                result = {};
                break;
            case GateKind::And2:
            case GateKind::Xor2: {
                result = merge_supports(effective_support(n.a), effective_support(n.b));
                if (result.size() > kLutInputs) {
                    result = {id};  // too wide: a LUT boundary forms here
                }
                break;
            }
        }
        support_cache_.emplace(id, result);
        return result;
    }

    /// LUT levels this cone needs (0 = wire/input, 1 = fits one LUT, ...).
    int level_of(NodeId id) {
        const auto it = level_cache_.find(id);
        if (it != level_cache_.end()) {
            return it->second;
        }
        const Node& n = nl_->node(id);
        int level = 0;
        if (n.kind == GateKind::And2 || n.kind == GateKind::Xor2) {
            const auto support = effective_support(id);
            if (!(support.size() == 1 && support[0] == id)) {
                level = 1;  // whole cone absorbable into one LUT
            } else {
                level = 1 + std::max(level_of(n.a), level_of(n.b));
            }
        }
        level_cache_.emplace(id, level);
        return level;
    }

    static std::vector<NodeId> merge_supports(const std::vector<NodeId>& a,
                                              const std::vector<NodeId>& b) {
        std::vector<NodeId> out;
        out.reserve(a.size() + b.size());
        std::set_union(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
        return out;
    }

    Netlist* nl_;
    std::unordered_map<NodeId, std::vector<NodeId>> support_cache_;
    std::unordered_map<NodeId, int> level_cache_;
};

}  // namespace

Netlist dce(const Netlist& nl) {
    Netlist out;
    auto memo = seed_inputs(nl, out);
    for (const auto& port : nl.outputs()) {
        out.add_output(port.name, rebuild_plain(nl, out, memo, port.node));
    }
    return out;
}

Netlist balance_xor_trees(const Netlist& nl) {
    Netlist out;
    auto memo = seed_inputs(nl, out);
    const auto fanout = nl.fanout_counts();
    MinDepthXorBuilder builder{out};

    // Recursive rebuild; XOR roots are flattened through single-fanout XOR
    // children and rebuilt depth-optimally over their (possibly deep) units.
    auto rebuild = [&](auto&& self, NodeId id) -> NodeId {
        if (memo[id] != kInvalidNode) {
            return memo[id];
        }
        const Node& n = nl.node(id);
        NodeId result = kInvalidNode;
        switch (n.kind) {
            case GateKind::Input:
                result = memo[id];
                break;
            case GateKind::Const0:
                result = out.const0();
                break;
            case GateKind::And2:
                result = out.make_and(self(self, n.a), self(self, n.b));
                break;
            case GateKind::Xor2: {
                const auto leaves = xor_leaves(
                    nl, id, [&](NodeId x) { return fanout[x] <= 1; });
                std::vector<NodeId> new_leaves;
                new_leaves.reserve(leaves.size());
                for (const NodeId leaf : leaves) {
                    new_leaves.push_back(self(self, leaf));
                }
                result = builder.build(new_leaves);
                break;
            }
        }
        memo[id] = result;
        return result;
    };

    for (const auto& port : nl.outputs()) {
        out.add_output(port.name, rebuild(rebuild, port.node));
    }
    return out;
}

Netlist flatten_to_anf(const Netlist& nl) {
    Netlist out;
    auto memo = seed_inputs(nl, out);
    LutAwareXorBuilder builder{out};

    for (const auto& port : nl.outputs()) {
        const Node& n = nl.node(port.node);
        if (n.kind != GateKind::Xor2) {
            out.add_output(port.name, rebuild_plain(nl, out, memo, port.node));
            continue;
        }
        // Expand through EVERY XOR node (shared or not): only the AND-level
        // leaves of the reduced ANF survive.
        const auto leaves = xor_leaves(nl, port.node, [](NodeId) { return true; });
        std::vector<NodeId> new_leaves;
        new_leaves.reserve(leaves.size());
        for (const NodeId leaf : leaves) {
            new_leaves.push_back(rebuild_plain(nl, out, memo, leaf));
        }
        // Id order == creation order: products created together (e.g. the two
        // halves of a z term) stay adjacent, so identical subtrees reappear
        // across outputs and unify in the structural hash.
        std::sort(new_leaves.begin(), new_leaves.end());
        out.add_output(port.name, builder.build(new_leaves));
    }
    return out;
}

Netlist group_common_cones(const Netlist& nl) {
    Netlist out;
    auto memo = seed_inputs(nl, out);
    LutAwareXorBuilder builder{out};

    // 1. Full ANF leaf lists per output (old ids), duplicates cancelled.
    const int n_outputs = static_cast<int>(nl.outputs().size());
    std::vector<std::vector<NodeId>> old_lists(static_cast<std::size_t>(n_outputs));
    std::vector<NodeId> plain_outputs(static_cast<std::size_t>(n_outputs), kInvalidNode);
    for (int oi = 0; oi < n_outputs; ++oi) {
        const NodeId root = nl.outputs()[static_cast<std::size_t>(oi)].node;
        if (nl.node(root).kind == GateKind::Xor2) {
            old_lists[static_cast<std::size_t>(oi)] =
                xor_leaves(nl, root, [](NodeId) { return true; });
        } else {
            plain_outputs[static_cast<std::size_t>(oi)] =
                rebuild_plain(nl, out, memo, root);
        }
    }

    // 2. Output signature per leaf.
    std::unordered_map<NodeId, std::vector<int>> signature;
    for (int oi = 0; oi < n_outputs; ++oi) {
        for (const NodeId leaf : old_lists[static_cast<std::size_t>(oi)]) {
            signature[leaf].push_back(oi);
        }
    }

    // 3. Leaves sharing a signature become one group, built once.
    std::map<std::vector<int>, std::vector<NodeId>> groups;
    for (auto& [leaf, sig] : signature) {
        groups[sig].push_back(leaf);
    }
    std::vector<std::vector<NodeId>> final_lists(static_cast<std::size_t>(n_outputs));
    for (auto& [sig, leaves] : groups) {
        std::sort(leaves.begin(), leaves.end());  // old-id order: pairs stay adjacent
        std::vector<NodeId> new_leaves;
        new_leaves.reserve(leaves.size());
        for (const NodeId leaf : leaves) {
            new_leaves.push_back(rebuild_plain(nl, out, memo, leaf));
        }
        std::sort(new_leaves.begin(), new_leaves.end());
        const NodeId unit = builder.build(new_leaves);
        for (const int oi : sig) {
            final_lists[static_cast<std::size_t>(oi)].push_back(unit);
        }
    }

    // 4. Rebuild each output over its group units.
    for (int oi = 0; oi < n_outputs; ++oi) {
        const auto& port = nl.outputs()[static_cast<std::size_t>(oi)];
        if (plain_outputs[static_cast<std::size_t>(oi)] != kInvalidNode) {
            out.add_output(port.name, plain_outputs[static_cast<std::size_t>(oi)]);
        } else {
            out.add_output(port.name,
                           builder.build(final_lists[static_cast<std::size_t>(oi)]));
        }
    }
    return out;
}

Netlist extract_common_xor_pairs(const Netlist& nl) { return extract_common_xor_pairs(nl, 2); }

Netlist extract_common_xor_pairs(const Netlist& nl, int min_count) {
    Netlist out;
    auto memo = seed_inputs(nl, out);
    const auto fanout = nl.fanout_counts();
    MinDepthXorBuilder builder{out};

    // 1. Flatten every output into a list of leaves in the *new* netlist.
    //    Expansion stops at non-XOR nodes and at shared (multi-fanout) XOR
    //    subterms, which are rebuilt as units via balance-style recursion.
    auto rebuild_leaf = [&](auto&& self, NodeId id) -> NodeId {
        if (memo[id] != kInvalidNode) {
            return memo[id];
        }
        const Node& n = nl.node(id);
        NodeId result = kInvalidNode;
        switch (n.kind) {
            case GateKind::Input:
                result = memo[id];
                break;
            case GateKind::Const0:
                result = out.const0();
                break;
            case GateKind::And2:
                result = out.make_and(self(self, n.a), self(self, n.b));
                break;
            case GateKind::Xor2: {
                const auto leaves = xor_leaves(
                    nl, id, [&](NodeId x) { return fanout[x] <= 1; });
                std::vector<NodeId> new_leaves;
                new_leaves.reserve(leaves.size());
                for (const NodeId leaf : leaves) {
                    new_leaves.push_back(self(self, leaf));
                }
                result = builder.build(new_leaves);
                break;
            }
        }
        memo[id] = result;
        return result;
    };

    std::vector<std::vector<NodeId>> lists;   // sorted leaf lists, new ids
    lists.reserve(nl.outputs().size());
    for (const auto& port : nl.outputs()) {
        const Node& n = nl.node(port.node);
        std::vector<NodeId> new_leaves;
        if (n.kind == GateKind::Xor2) {
            const auto leaves =
                xor_leaves(nl, port.node, [&](NodeId x) { return fanout[x] <= 1; });
            for (const NodeId leaf : leaves) {
                new_leaves.push_back(rebuild_leaf(rebuild_leaf, leaf));
            }
        } else {
            new_leaves.push_back(rebuild_leaf(rebuild_leaf, port.node));
        }
        std::sort(new_leaves.begin(), new_leaves.end());
        lists.push_back(std::move(new_leaves));
    }

    // 2. Greedy fast-extract.  Only leaves appearing in >= 2 lists can form a
    //    pair with count >= 2, so everything else is skipped when counting.
    std::unordered_map<NodeId, std::vector<int>> occ;  // leaf -> list indices
    for (int li = 0; li < static_cast<int>(lists.size()); ++li) {
        for (const NodeId leaf : lists[li]) {
            occ[leaf].push_back(li);
        }
    }
    auto is_shared = [&](NodeId leaf) {
        const auto it = occ.find(leaf);
        return it != occ.end() && it->second.size() >= 2;
    };
    auto list_contains = [&](int li, NodeId leaf) {
        return std::binary_search(lists[li].begin(), lists[li].end(), leaf);
    };

    std::unordered_map<std::uint64_t, int> pair_count;
    for (const auto& list : lists) {
        for (std::size_t i = 0; i < list.size(); ++i) {
            if (!is_shared(list[i])) {
                continue;
            }
            for (std::size_t j = i + 1; j < list.size(); ++j) {
                if (is_shared(list[j])) {
                    ++pair_count[pair_key(list[i], list[j])];
                }
            }
        }
    }

    using HeapItem = std::pair<int, std::uint64_t>;  // (count, pair key)
    std::priority_queue<HeapItem> heap;
    for (const auto& [key, count] : pair_count) {
        if (count >= 2) {
            heap.emplace(count, key);
        }
    }

    auto erase_from_list = [](std::vector<NodeId>& list, NodeId leaf) {
        const auto it = std::lower_bound(list.begin(), list.end(), leaf);
        if (it != list.end() && *it == leaf) {
            list.erase(it);
        }
    };
    auto insert_into_list = [](std::vector<NodeId>& list, NodeId leaf) {
        list.insert(std::lower_bound(list.begin(), list.end(), leaf), leaf);
    };

    constexpr int kMaxExtractions = 1 << 18;  // safety valve
    for (int round = 0; round < kMaxExtractions && !heap.empty();) {
        const auto [count, key] = heap.top();
        heap.pop();
        const auto it = pair_count.find(key);
        if (it == pair_count.end()) {
            continue;
        }
        if (it->second != count) {
            if (it->second >= 2) {
                heap.emplace(it->second, key);  // re-queue with current count
            }
            continue;
        }
        if (count < min_count) {
            break;
        }
        const NodeId u = static_cast<NodeId>(key >> 32U);
        const NodeId v = static_cast<NodeId>(key & 0xFFFFFFFFU);

        // Lists containing both u and v.
        std::vector<int> hits;
        for (const int li : occ[u]) {
            if (list_contains(li, u) && list_contains(li, v)) {
                hits.push_back(li);
            }
        }
        std::sort(hits.begin(), hits.end());
        hits.erase(std::unique(hits.begin(), hits.end()), hits.end());
        if (static_cast<int>(hits.size()) < min_count) {
            pair_count.erase(key);
            continue;  // counts went stale; re-derive lazily
        }

        const NodeId w = out.make_xor(u, v);
        for (const int li : hits) {
            auto& list = lists[li];
            // Remove stale pair contributions of u and v with this list.
            for (const NodeId x : list) {
                if (x == u || x == v || !is_shared(x)) {
                    continue;
                }
                for (const NodeId y : {u, v}) {
                    const auto pit = pair_count.find(pair_key(x, y));
                    if (pit != pair_count.end()) {
                        --pit->second;
                    }
                }
            }
            const auto uv = pair_count.find(pair_key(u, v));
            if (uv != pair_count.end()) {
                --uv->second;
            }
            erase_from_list(list, u);
            erase_from_list(list, v);
            // New pairs with w.
            for (const NodeId x : list) {
                if (is_shared(x) || x == w) {
                    const int c = ++pair_count[pair_key(x, w)];
                    if (c >= 2) {
                        heap.emplace(c, pair_key(x, w));
                    }
                }
            }
            insert_into_list(list, w);
            occ[w].push_back(li);
        }
        ++round;
    }

    // 3. Depth-aware rebuild of every output over its final leaf list.
    for (std::size_t oi = 0; oi < nl.outputs().size(); ++oi) {
        out.add_output(nl.outputs()[oi].name, builder.build(lists[oi]));
    }
    return out;
}

Netlist synthesize(const Netlist& nl, const SynthOptions& options) {
    Netlist current = dce(nl);
    if (options.group_cones) {
        current = group_common_cones(current);
    } else if (options.flatten_anf) {
        current = flatten_to_anf(current);
    }
    if (options.extract_pairs) {
        current = extract_common_xor_pairs(current, options.cse_min_count);
    }
    if (options.balance && !(options.flatten_anf || options.group_cones)) {
        current = balance_xor_trees(current);  // the rebuilds above are min-depth
    }
    return current;
}

}  // namespace gfr::netlist
