#ifndef GFR_NETLIST_EMIT_DOT_H
#define GFR_NETLIST_EMIT_DOT_H

// Graphviz export of netlists, for inspecting generated multiplier
// structures (AND layer, shared z pairs, split-term trees) visually.

#include "netlist/netlist.h"

#include <string>

namespace gfr::netlist {

/// Render the reachable logic as a Graphviz digraph: inputs as boxes,
/// AND gates as triangles, XOR gates as circles, outputs as double circles.
std::string emit_dot(const Netlist& nl, const std::string& graph_name);

}  // namespace gfr::netlist

#endif  // GFR_NETLIST_EMIT_DOT_H
