#ifndef GFR_NETLIST_EMIT_VERILOG_H
#define GFR_NETLIST_EMIT_VERILOG_H

// Structural Verilog emission, mirroring emit_vhdl for flows that prefer
// Verilog design entry.

#include "netlist/netlist.h"

#include <string>

namespace gfr::netlist {

/// Render the reachable logic of `nl` as a synthesisable Verilog module.
std::string emit_verilog(const Netlist& nl, const std::string& module_name);

}  // namespace gfr::netlist

#endif  // GFR_NETLIST_EMIT_VERILOG_H
