#ifndef GFR_NETLIST_CLONE_H
#define GFR_NETLIST_CLONE_H

// Netlist cloning with fault-injection hooks — the mutation substrate of
// the verification tier (promoted from tests/testutil.h so the in-library
// fault-injection campaign can use it too).
//
// Two cloning modes:
//
//   - interned (default): gates are rebuilt through make_and/make_xor, so
//     structural hashing in the destination may merge or simplify rewritten
//     gates.  This is the historical mutation-test behaviour: the copy is
//     functionally faithful to the rewrites, and a rewrite that simplifies
//     to an existing node models a wiring fault rather than a gate fault.
//   - verbatim (intern = false): a node-for-node replica built with the
//     fresh (non-interned) gate API.  Node ids map 1:1 (map[id] == id for
//     every source node), injected gates stay live even when degenerate
//     (XOR(a,a) remains an evaluable gate computing 0), and — critically
//     for CED validation — a fault injected into a multiplier gate can
//     never be merged into the structurally independent checker logic,
//     which would mask exactly the fault the checker exists to catch.

#include "netlist/netlist.h"

#include <functional>
#include <span>

namespace gfr::netlist {

/// May rewrite one logic gate during clone_netlist: kind and fanins are the
/// *source* netlist's values; rewritten fanins must reference source nodes
/// created before `id` (the clone maps them bottom-up).
using GateHook = std::function<void(NodeId id, GateKind& kind, NodeId& a,
                                    NodeId& b)>;

/// May redirect outputs during clone_netlist: receives the output index,
/// the mapped drivers of ALL outputs (same order as src.outputs()), and the
/// destination netlist (for building extra gates); returns the node to
/// register under this index's original name.  Returning mapped[other]
/// swaps output drivers — the classic transcription fault.
using OutputHook = std::function<NodeId(
    std::size_t index, std::span<const NodeId> mapped, Netlist& dst)>;

struct CloneOptions {
    /// Rebuild gates through the interning builders (see header comment).
    /// Set false for a verbatim replica with 1:1 node ids.
    bool intern = true;
};

/// Structural gate-for-gate copy of `src` with optional fault-injection
/// hooks.  Input/output names and order are preserved.
Netlist clone_netlist(const Netlist& src, const CloneOptions& options = {},
                      const GateHook& gate_hook = nullptr,
                      const OutputHook& output_hook = nullptr);

}  // namespace gfr::netlist

#endif  // GFR_NETLIST_CLONE_H
