#include "netlist/emit_vhdl.h"

#include <stdexcept>

namespace gfr::netlist {

namespace {

std::string sanitize(const std::string& name) {
    std::string out;
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        out += ok ? c : '_';
    }
    if (out.empty() || !((out[0] >= 'a' && out[0] <= 'z') || (out[0] >= 'A' && out[0] <= 'Z'))) {
        out = "p" + out;
    }
    return out;
}

}  // namespace

std::string emit_vhdl(const Netlist& nl, const std::string& entity_name) {
    if (nl.outputs().empty()) {
        throw std::invalid_argument{"emit_vhdl: netlist has no outputs"};
    }
    const auto reachable = nl.reachable_from_outputs();
    const std::string entity = sanitize(entity_name);

    std::string out;
    out += "library ieee;\nuse ieee.std_logic_1164.all;\n\n";
    out += "entity " + entity + " is\n  port (\n";
    for (const auto& port : nl.inputs()) {
        out += "    " + sanitize(port.name) + " : in  std_logic;\n";
    }
    for (std::size_t i = 0; i < nl.outputs().size(); ++i) {
        out += "    " + sanitize(nl.outputs()[i].name) + " : out std_logic";
        out += (i + 1 < nl.outputs().size()) ? ";\n" : "\n";
    }
    out += "  );\nend entity " + entity + ";\n\n";
    out += "architecture rtl of " + entity + " is\n";

    // Wire name per node: inputs keep their port name, gates get n<id>.
    std::vector<std::string> wire(nl.node_count());
    for (const auto& port : nl.inputs()) {
        wire[port.node] = sanitize(port.name);
    }
    bool any_signal = false;
    std::string decls;
    for (NodeId id = 0; id < nl.node_count(); ++id) {
        if (!reachable[id]) {
            continue;
        }
        const Node& n = nl.node(id);
        if (n.kind == GateKind::And2 || n.kind == GateKind::Xor2 ||
            n.kind == GateKind::Const0) {
            wire[id] = "n" + std::to_string(id);
            decls += "  signal " + wire[id] + " : std_logic;\n";
            any_signal = true;
        }
    }
    if (any_signal) {
        out += decls;
    }
    out += "begin\n";
    for (NodeId id = 0; id < nl.node_count(); ++id) {
        if (!reachable[id]) {
            continue;
        }
        const Node& n = nl.node(id);
        switch (n.kind) {
            case GateKind::Input:
                break;
            case GateKind::Const0:
                out += "  " + wire[id] + " <= '0';\n";
                break;
            case GateKind::And2:
                out += "  " + wire[id] + " <= " + wire[n.a] + " and " + wire[n.b] + ";\n";
                break;
            case GateKind::Xor2:
                out += "  " + wire[id] + " <= " + wire[n.a] + " xor " + wire[n.b] + ";\n";
                break;
        }
    }
    for (const auto& port : nl.outputs()) {
        out += "  " + sanitize(port.name) + " <= " + wire[port.node] + ";\n";
    }
    out += "end architecture rtl;\n";
    return out;
}

}  // namespace gfr::netlist
