#include "netlist/equivalence.h"

#include "netlist/simulate.h"
#include "verify/campaign.h"

#include <algorithm>
#include <bit>
#include <memory>
#include <optional>
#include <stdexcept>

namespace gfr::netlist {

std::string Mismatch::to_string() const {
    std::string out = "output '" + output_name + "': lhs=" +
                      std::to_string(static_cast<int>(lhs_value)) + " rhs=" +
                      std::to_string(static_cast<int>(rhs_value)) + " inputs=";
    if (input_names.size() == input_bits.size()) {
        for (std::size_t i = 0; i < input_bits.size(); ++i) {
            if (i != 0) {
                out += ' ';
            }
            out += input_names[i];
            out += '=';
            out += static_cast<char>('0' + input_bits[i]);
        }
    } else {
        for (const auto bit : input_bits) {
            out += static_cast<char>('0' + bit);
        }
    }
    return out;
}

namespace {

/// rhs input index for each lhs input, matched by name.
std::vector<int> match_ports(const std::vector<Port>& lhs, const std::vector<Port>& rhs,
                             const char* what) {
    if (lhs.size() != rhs.size()) {
        throw std::invalid_argument{std::string{"check_equivalence: "} + what +
                                    " count differs"};
    }
    std::vector<int> map(lhs.size(), -1);
    for (std::size_t i = 0; i < lhs.size(); ++i) {
        for (std::size_t j = 0; j < rhs.size(); ++j) {
            if (lhs[i].name == rhs[j].name) {
                map[i] = static_cast<int>(j);
                break;
            }
        }
        if (map[i] < 0) {
            throw std::invalid_argument{std::string{"check_equivalence: "} + what +
                                        " '" + lhs[i].name + "' missing on rhs"};
        }
    }
    return map;
}

/// One campaign worker's state: a pair of simulators, their output buffers
/// and the sweep's input words.  Each worker owns its context outright
/// (nothing is shared through the netlists, which stay const), the same
/// explicit-scratch discipline the field engine follows.
struct SweepContext {
    SweepContext(const Netlist& lhs, const Netlist& rhs, int n)
        : lhs_sim{lhs},
          rhs_sim{rhs},
          lhs_in(static_cast<std::size_t>(n), 0),
          rhs_in(static_cast<std::size_t>(n), 0) {}

    Simulator lhs_sim;
    Simulator rhs_sim;
    std::vector<std::uint64_t> lhs_in;
    std::vector<std::uint64_t> rhs_in;
    std::vector<std::uint64_t> lhs_out;
    std::vector<std::uint64_t> rhs_out;
};

std::optional<Mismatch> compare_sweep(SweepContext& ctx, const Netlist& lhs,
                                      const std::vector<int>& out_map) {
    ctx.lhs_sim.run_into(ctx.lhs_in, ctx.lhs_out);
    ctx.rhs_sim.run_into(ctx.rhs_in, ctx.rhs_out);
    const auto& lhs_out = ctx.lhs_out;
    const auto& rhs_out = ctx.rhs_out;
    for (std::size_t o = 0; o < lhs_out.size(); ++o) {
        const std::uint64_t diff = lhs_out[o] ^ rhs_out[static_cast<std::size_t>(out_map[o])];
        if (diff == 0) {
            continue;
        }
        const int lane = std::countr_zero(diff);
        Mismatch mm;
        mm.output_name = lhs.outputs()[o].name;
        mm.lhs_value = (lhs_out[o] >> lane) & 1U;
        mm.rhs_value = (rhs_out[static_cast<std::size_t>(out_map[o])] >> lane) & 1U;
        mm.input_bits.resize(ctx.lhs_in.size());
        mm.input_names.resize(ctx.lhs_in.size());
        for (std::size_t i = 0; i < ctx.lhs_in.size(); ++i) {
            mm.input_bits[i] = static_cast<std::uint8_t>((ctx.lhs_in[i] >> lane) & 1U);
            mm.input_names[i] = lhs.inputs()[i].name;
        }
        return mm;
    }
    return std::nullopt;
}

}  // namespace

std::optional<Mismatch> check_equivalence(const Netlist& lhs, const Netlist& rhs,
                                          const EquivalenceOptions& options) {
    const auto in_map = match_ports(lhs.inputs(), rhs.inputs(), "input");
    const auto out_map = match_ports(lhs.outputs(), rhs.outputs(), "output");

    const int n = static_cast<int>(lhs.inputs().size());
    const bool exhaustive = n <= options.max_exhaustive_inputs;
    const std::uint64_t total_sweeps =
        exhaustive ? ((n <= 6) ? 1 : (std::uint64_t{1} << (n - 6)))
                   : static_cast<std::uint64_t>(options.random_sweeps);

    // Same floor policy as verify_multiplier: random sweeps (two
    // simulations over dense vectors) shard even at small sweep counts,
    // tiny exhaustive spaces stay inline.
    verify::Campaign campaign{{.threads = options.threads,
                               .min_sweeps_per_worker = exhaustive ? 64U : 4U}};
    const int workers = campaign.worker_count(total_sweeps);
    std::vector<std::optional<Mismatch>> payload(static_cast<std::size_t>(workers));
    std::vector<std::uint64_t> payload_sweep(static_cast<std::size_t>(workers),
                                             verify::kNoFailure);

    const auto factory = [&](int worker_id) -> verify::Campaign::SweepFn {
        auto ctx = std::make_shared<SweepContext>(lhs, rhs, n);
        return [&, worker_id, ctx](std::uint64_t sweep) -> bool {
            if (exhaustive) {
                for (int i = 0; i < n; ++i) {
                    ctx->lhs_in[static_cast<std::size_t>(i)] = exhaustive_pattern(i, sweep);
                    ctx->rhs_in[static_cast<std::size_t>(in_map[i])] =
                        ctx->lhs_in[static_cast<std::size_t>(i)];
                }
            } else {
                verify::SweepRng rng{
                    verify::Campaign::derive_sweep_seed(options.seed, sweep)};
                for (int i = 0; i < n; ++i) {
                    ctx->lhs_in[static_cast<std::size_t>(i)] = rng();
                    ctx->rhs_in[static_cast<std::size_t>(in_map[i])] =
                        ctx->lhs_in[static_cast<std::size_t>(i)];
                }
            }
            auto mm = compare_sweep(*ctx, lhs, out_map);
            if (mm.has_value()) {
                payload[static_cast<std::size_t>(worker_id)] = std::move(mm);
                payload_sweep[static_cast<std::size_t>(worker_id)] = sweep;
                return true;
            }
            return false;
        };
    };

    const std::uint64_t failing_sweep = campaign.run(total_sweeps, factory);
    if (failing_sweep == verify::kNoFailure) {
        return std::nullopt;
    }
    for (int w = 0; w < workers; ++w) {
        if (payload_sweep[static_cast<std::size_t>(w)] == failing_sweep) {
            return payload[static_cast<std::size_t>(w)];
        }
    }
    return std::nullopt;  // unreachable: the failing worker recorded its payload
}

}  // namespace gfr::netlist
