#include "netlist/equivalence.h"

#include "exec/program.h"
#include "netlist/simulate.h"
#include "verify/campaign.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <memory>
#include <optional>
#include <stdexcept>

namespace gfr::netlist {

std::string Mismatch::to_string() const {
    std::string out = "output '" + output_name + "': lhs=" +
                      std::to_string(static_cast<int>(lhs_value)) + " rhs=" +
                      std::to_string(static_cast<int>(rhs_value)) + " inputs=";
    if (input_names.size() == input_bits.size()) {
        for (std::size_t i = 0; i < input_bits.size(); ++i) {
            if (i != 0) {
                out += ' ';
            }
            out += input_names[i];
            out += '=';
            out += static_cast<char>('0' + input_bits[i]);
        }
    } else {
        for (const auto bit : input_bits) {
            out += static_cast<char>('0' + bit);
        }
    }
    if (sweep_index != ~std::uint64_t{0}) {
        char repro[128];
        if (random_regime) {
            std::snprintf(repro, sizeof repro,
                          " [repro: seed=0x%llx sweep=%llu sweep_seed=0x%llx]",
                          static_cast<unsigned long long>(campaign_seed),
                          static_cast<unsigned long long>(sweep_index),
                          static_cast<unsigned long long>(
                              verify::Campaign::derive_sweep_seed(campaign_seed,
                                                                  sweep_index)));
        } else {
            std::snprintf(repro, sizeof repro,
                          " [repro: exhaustive sweep=%llu]",
                          static_cast<unsigned long long>(sweep_index));
        }
        out += repro;
    }
    return out;
}

namespace {

/// rhs input index for each lhs input, matched by name.
std::vector<int> match_ports(const std::vector<Port>& lhs, const std::vector<Port>& rhs,
                             const char* what) {
    if (lhs.size() != rhs.size()) {
        throw std::invalid_argument{std::string{"check_equivalence: "} + what +
                                    " count differs"};
    }
    std::vector<int> map(lhs.size(), -1);
    for (std::size_t i = 0; i < lhs.size(); ++i) {
        for (std::size_t j = 0; j < rhs.size(); ++j) {
            if (lhs[i].name == rhs[j].name) {
                map[i] = static_cast<int>(j);
                break;
            }
        }
        if (map[i] < 0) {
            throw std::invalid_argument{std::string{"check_equivalence: "} + what +
                                        " '" + lhs[i].name + "' missing on rhs"};
        }
    }
    return map;
}

/// One campaign worker's state: execution scratch for the two shared
/// compiled tapes plus the sweep's input/output buffers (sized for up to
/// `blocks` blocks of 64 lanes).  The Programs themselves are immutable and
/// shared by every worker — only the scratch is private, the same
/// explicit-scratch discipline the field engine follows.
struct SweepContext {
    SweepContext(int n, int n_out, int blocks)
        : lhs_in(static_cast<std::size_t>(n) * blocks, 0),
          rhs_in(static_cast<std::size_t>(n) * blocks, 0),
          lhs_out(static_cast<std::size_t>(n_out) * blocks, 0),
          rhs_out(static_cast<std::size_t>(n_out) * blocks, 0) {}

    exec::Program::Scratch lhs_scratch;
    exec::Program::Scratch rhs_scratch;
    std::vector<std::uint64_t> lhs_in;
    std::vector<std::uint64_t> rhs_in;
    std::vector<std::uint64_t> lhs_out;
    std::vector<std::uint64_t> rhs_out;
};

/// Runs both tapes over `blocks` blocks loaded in ctx and scans the blocks
/// in ascending order, so the reported mismatch is the first one a
/// block-at-a-time scan would find — grouping blocks into one pass never
/// changes the counterexample.  On mismatch *failed_block is the in-sweep
/// block index, letting the caller report width-1 coordinates.
std::optional<Mismatch> compare_sweep(SweepContext& ctx, const exec::Program& lhs_prog,
                                      const exec::Program& rhs_prog, const Netlist& lhs,
                                      const std::vector<int>& out_map, int blocks,
                                      int* failed_block) {
    const std::size_t n = static_cast<std::size_t>(lhs_prog.input_count());
    const std::size_t n_out = static_cast<std::size_t>(lhs_prog.output_count());
    lhs_prog.run(std::span{ctx.lhs_in}.first(n * blocks),
                 std::span{ctx.lhs_out}.first(n_out * blocks), ctx.lhs_scratch, blocks);
    rhs_prog.run(std::span{ctx.rhs_in}.first(n * blocks),
                 std::span{ctx.rhs_out}.first(n_out * blocks), ctx.rhs_scratch, blocks);
    for (int b = 0; b < blocks; ++b) {
        const std::uint64_t* lhs_out = ctx.lhs_out.data() + b * n_out;
        const std::uint64_t* rhs_out = ctx.rhs_out.data() + b * n_out;
        const std::uint64_t* lhs_in = ctx.lhs_in.data() + b * n;
        for (std::size_t o = 0; o < n_out; ++o) {
            const std::uint64_t diff =
                lhs_out[o] ^ rhs_out[static_cast<std::size_t>(out_map[o])];
            if (diff == 0) {
                continue;
            }
            const int lane = std::countr_zero(diff);
            Mismatch mm;
            mm.output_name = lhs.outputs()[o].name;
            mm.lhs_value = (lhs_out[o] >> lane) & 1U;
            mm.rhs_value = (rhs_out[static_cast<std::size_t>(out_map[o])] >> lane) & 1U;
            mm.input_bits.resize(n);
            mm.input_names.resize(n);
            for (std::size_t i = 0; i < n; ++i) {
                mm.input_bits[i] = static_cast<std::uint8_t>((lhs_in[i] >> lane) & 1U);
                mm.input_names[i] = lhs.inputs()[i].name;
            }
            *failed_block = b;
            return mm;
        }
    }
    return std::nullopt;
}

}  // namespace

std::optional<Mismatch> check_equivalence(const Netlist& lhs, const Netlist& rhs,
                                          const EquivalenceOptions& options) {
    const auto in_map = match_ports(lhs.inputs(), rhs.inputs(), "input");
    const auto out_map = match_ports(lhs.outputs(), rhs.outputs(), "output");

    const int n = static_cast<int>(lhs.inputs().size());
    const bool exhaustive = n <= options.max_exhaustive_inputs;

    // Both netlists compile once into liveness-scheduled tapes; the campaign
    // workers share the immutable Programs and own only execution scratch.
    const exec::Program lhs_prog = exec::Program::compile(lhs);
    const exec::Program rhs_prog = exec::Program::compile(rhs);

    // Both regimes batch blocks into bitsliced passes (the SIMD backends
    // feed on wide sweeps); random block contents stay pinned to their
    // width-1 index (see exec::BlockGrouping), so batching never changes a
    // verdict or a repro coordinate.
    const std::uint64_t total_blocks =
        exhaustive ? ((n <= 6) ? 1 : (std::uint64_t{1} << (n - 6)))
                   : static_cast<std::uint64_t>(options.random_sweeps);
    const exec::BlockGrouping grouping =
        exec::BlockGrouping::over(total_blocks, true);
    const std::uint64_t total_sweeps = grouping.total_sweeps;

    // Same floor policy as verify_multiplier: random sweeps (two batched
    // simulations over dense vectors) shard down to one sweep per worker,
    // tiny exhaustive spaces stay inline.
    verify::Campaign campaign{{.threads = options.threads,
                               .min_sweeps_per_worker = exhaustive ? 64U : 1U}};
    const int workers = campaign.worker_count(total_sweeps);
    std::vector<std::optional<Mismatch>> payload(static_cast<std::size_t>(workers));
    std::vector<std::uint64_t> payload_sweep(static_cast<std::size_t>(workers),
                                             verify::kNoFailure);

    const auto factory = [&](int worker_id) -> verify::Campaign::SweepFn {
        auto ctx = std::make_shared<SweepContext>(n, static_cast<int>(lhs.outputs().size()),
                                                  grouping.group);
        return [&, worker_id, ctx](std::uint64_t sweep) -> bool {
            const std::uint64_t first_block = grouping.first_block(sweep);
            const int blocks = grouping.blocks_in_sweep(sweep);
            if (exhaustive) {
                for (int b = 0; b < blocks; ++b) {
                    for (int i = 0; i < n; ++i) {
                        const std::uint64_t w = exhaustive_pattern(
                            i, first_block + static_cast<std::uint64_t>(b));
                        ctx->lhs_in[static_cast<std::size_t>(b * n + i)] = w;
                        ctx->rhs_in[static_cast<std::size_t>(b * n + in_map[i])] = w;
                    }
                }
            } else {
                // Each block's contents derive from its own width-1 index,
                // never the batched sweep number — a logged sweep_index
                // replays at any batching width.
                for (int b = 0; b < blocks; ++b) {
                    verify::SweepRng rng{verify::Campaign::derive_sweep_seed(
                        options.seed,
                        first_block + static_cast<std::uint64_t>(b))};
                    for (int i = 0; i < n; ++i) {
                        const std::uint64_t w = rng();
                        ctx->lhs_in[static_cast<std::size_t>(b * n + i)] = w;
                        ctx->rhs_in[static_cast<std::size_t>(b * n + in_map[i])] = w;
                    }
                }
            }
            int failed_block = 0;
            auto mm = compare_sweep(*ctx, lhs_prog, rhs_prog, lhs, out_map,
                                    blocks, &failed_block);
            if (mm.has_value()) {
                mm->campaign_seed = options.seed;
                // Width-1 coordinates for both regimes: the failing block's
                // own index, invariant across batching widths and backends.
                mm->sweep_index =
                    first_block + static_cast<std::uint64_t>(failed_block);
                mm->random_regime = !exhaustive;
                payload[static_cast<std::size_t>(worker_id)] = std::move(mm);
                payload_sweep[static_cast<std::size_t>(worker_id)] = sweep;
                return true;
            }
            return false;
        };
    };

    const std::uint64_t failing_sweep = campaign.run(total_sweeps, factory);
    if (failing_sweep == verify::kNoFailure) {
        return std::nullopt;
    }
    for (int w = 0; w < workers; ++w) {
        if (payload_sweep[static_cast<std::size_t>(w)] == failing_sweep) {
            return payload[static_cast<std::size_t>(w)];
        }
    }
    return std::nullopt;  // unreachable: the failing worker recorded its payload
}

}  // namespace gfr::netlist
