#include "netlist/equivalence.h"

#include "netlist/simulate.h"

#include <algorithm>
#include <random>
#include <stdexcept>

namespace gfr::netlist {

std::string Mismatch::to_string() const {
    std::string out = "output '" + output_name + "': lhs=" +
                      std::to_string(static_cast<int>(lhs_value)) + " rhs=" +
                      std::to_string(static_cast<int>(rhs_value)) + " inputs=";
    for (const auto bit : input_bits) {
        out += static_cast<char>('0' + bit);
    }
    return out;
}

namespace {

/// rhs input index for each lhs input, matched by name.
std::vector<int> match_ports(const std::vector<Port>& lhs, const std::vector<Port>& rhs,
                             const char* what) {
    if (lhs.size() != rhs.size()) {
        throw std::invalid_argument{std::string{"check_equivalence: "} + what +
                                    " count differs"};
    }
    std::vector<int> map(lhs.size(), -1);
    for (std::size_t i = 0; i < lhs.size(); ++i) {
        for (std::size_t j = 0; j < rhs.size(); ++j) {
            if (lhs[i].name == rhs[j].name) {
                map[i] = static_cast<int>(j);
                break;
            }
        }
        if (map[i] < 0) {
            throw std::invalid_argument{std::string{"check_equivalence: "} + what +
                                        " '" + lhs[i].name + "' missing on rhs"};
        }
    }
    return map;
}

/// One pair of simulators plus output buffers, reused across every sweep of
/// an equivalence run so the hot loop does not allocate.  Each run owns its
/// context outright (nothing is shared through the netlists, which stay
/// const), so equivalence checks may run concurrently from worker threads —
/// the same explicit-scratch discipline the field engine follows.
struct SweepContext {
    SweepContext(const Netlist& lhs, const Netlist& rhs) : lhs_sim{lhs}, rhs_sim{rhs} {}

    Simulator lhs_sim;
    Simulator rhs_sim;
    std::vector<std::uint64_t> lhs_out;
    std::vector<std::uint64_t> rhs_out;
};

std::optional<Mismatch> compare_sweep(SweepContext& ctx, const Netlist& lhs,
                                      const std::vector<int>& out_map,
                                      const std::vector<std::uint64_t>& lhs_in,
                                      const std::vector<std::uint64_t>& rhs_in) {
    ctx.lhs_sim.run_into(lhs_in, ctx.lhs_out);
    ctx.rhs_sim.run_into(rhs_in, ctx.rhs_out);
    const auto& lhs_out = ctx.lhs_out;
    const auto& rhs_out = ctx.rhs_out;
    for (std::size_t o = 0; o < lhs_out.size(); ++o) {
        const std::uint64_t diff = lhs_out[o] ^ rhs_out[static_cast<std::size_t>(out_map[o])];
        if (diff == 0) {
            continue;
        }
        const int lane = std::countr_zero(diff);
        Mismatch mm;
        mm.output_name = lhs.outputs()[o].name;
        mm.lhs_value = (lhs_out[o] >> lane) & 1U;
        mm.rhs_value = (rhs_out[static_cast<std::size_t>(out_map[o])] >> lane) & 1U;
        mm.input_bits.resize(lhs_in.size());
        for (std::size_t i = 0; i < lhs_in.size(); ++i) {
            mm.input_bits[i] = static_cast<std::uint8_t>((lhs_in[i] >> lane) & 1U);
        }
        return mm;
    }
    return std::nullopt;
}

}  // namespace

std::optional<Mismatch> check_equivalence(const Netlist& lhs, const Netlist& rhs,
                                          const EquivalenceOptions& options) {
    const auto in_map = match_ports(lhs.inputs(), rhs.inputs(), "input");
    const auto out_map = match_ports(lhs.outputs(), rhs.outputs(), "output");

    const int n = static_cast<int>(lhs.inputs().size());
    std::vector<std::uint64_t> lhs_in(static_cast<std::size_t>(n), 0);
    std::vector<std::uint64_t> rhs_in(static_cast<std::size_t>(n), 0);
    SweepContext ctx{lhs, rhs};

    if (n <= options.max_exhaustive_inputs) {
        const std::uint64_t blocks =
            (n <= 6) ? 1 : (std::uint64_t{1} << (n - 6));
        for (std::uint64_t block = 0; block < blocks; ++block) {
            for (int i = 0; i < n; ++i) {
                lhs_in[static_cast<std::size_t>(i)] = exhaustive_pattern(i, block);
                rhs_in[static_cast<std::size_t>(in_map[i])] =
                    lhs_in[static_cast<std::size_t>(i)];
            }
            if (auto mm = compare_sweep(ctx, lhs, out_map, lhs_in, rhs_in)) {
                return mm;
            }
        }
        return std::nullopt;
    }

    std::mt19937_64 rng{options.seed};
    for (int sweep = 0; sweep < options.random_sweeps; ++sweep) {
        for (int i = 0; i < n; ++i) {
            lhs_in[static_cast<std::size_t>(i)] = rng();
            rhs_in[static_cast<std::size_t>(in_map[i])] =
                lhs_in[static_cast<std::size_t>(i)];
        }
        if (auto mm = compare_sweep(ctx, lhs, out_map, lhs_in, rhs_in)) {
            return mm;
        }
    }
    return std::nullopt;
}

}  // namespace gfr::netlist
