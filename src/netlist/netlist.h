#ifndef GFR_NETLIST_NETLIST_H
#define GFR_NETLIST_NETLIST_H

// Gate-level netlist intermediate representation.
//
// The IR models exactly the gate repertoire of the paper's multipliers:
// 2-input AND (partial products a_i*b_j) and 2-input XOR (GF(2) additions),
// plus primary inputs and the constant 0.  Nodes live in a flat vector and
// are created strictly bottom-up, so the vector order *is* a topological
// order (every fanin id < node id) — passes and simulation rely on this.
//
// Structural hashing: make_and/make_xor canonicalise commutative fanins and
// return an existing node when one matches, so identical subexpressions
// (e.g. a shared S^j_i term used by several product coefficients) are
// represented once, exactly like the sharing the paper exploits.

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace gfr::netlist {

enum class GateKind : std::uint8_t { Input, Const0, And2, Xor2 };

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = 0xFFFFFFFFU;

/// One gate.  For Input/Const0 the fanins are kInvalidNode.
struct Node {
    GateKind kind = GateKind::Const0;
    NodeId a = kInvalidNode;
    NodeId b = kInvalidNode;
};

/// Named primary input or output.
struct Port {
    std::string name;
    NodeId node = kInvalidNode;
};

/// How make_xor_tree arranges a multi-input XOR.
enum class TreeShape : std::uint8_t {
    Balanced,  ///< complete binary tree, depth ceil(log2 n)
    Chain,     ///< left-leaning chain, depth n-1 (the "naive" shape)
};

/// Gate counts and depth profile of the logic reachable from the outputs.
///
/// and_depth / xor_depth are the maximum number of AND / XOR gates on any
/// input-to-output path (counted independently, the convention used by the
/// paper's "T_A + k T_X" delay expressions; all multipliers here have
/// and_depth == 1 because products form a single AND layer).
struct NetlistStats {
    int n_inputs = 0;
    int n_outputs = 0;
    int n_and = 0;
    int n_xor = 0;
    int and_depth = 0;
    int xor_depth = 0;

    /// "T_A + 5T_X" style rendering.
    [[nodiscard]] std::string delay_string() const;
};

class Netlist {
public:
    Netlist() = default;

    // --- Construction ----------------------------------------------------

    /// New primary input.  Names must be unique (checked).
    NodeId add_input(std::string name);

    /// The constant-0 node (created on first use).
    NodeId const0();

    /// AND with simplification (x&x = x, x&0 = 0) and structural hashing.
    NodeId make_and(NodeId a, NodeId b);

    /// XOR with simplification (x^x = 0, x^0 = x) and structural hashing.
    NodeId make_xor(NodeId a, NodeId b);

    /// XOR of an arbitrary list of leaves with the requested shape.
    /// An empty list yields const0; a single leaf is returned unchanged.
    NodeId make_xor_tree(std::span<const NodeId> leaves, TreeShape shape);

    // --- Fresh (non-interned) gates --------------------------------------
    // Append a brand-new node unconditionally: no simplification, no
    // structural-hash lookup, and the new node is never offered to future
    // intern() calls.  Two users need this guarantee:
    //
    //   - concurrent-error-detection circuits (guard::add_parity_ced),
    //     whose checker logic must be structurally independent of the
    //     multiplier it checks — interning would merge a prediction gate
    //     with the very gate whose fault it exists to catch, making that
    //     fault undetectable by construction;
    //   - verbatim fault-injection clones (netlist::clone_netlist with
    //     intern off), where hashing could simplify the injected fault
    //     away (XOR(a,a) must stay a live, evaluable gate).
    //
    // Equal fanins are legal here (XOR(a,a) evaluates to 0, AND(a,a) to a);
    // downstream passes and exec::Program handle duplicate operands.

    /// Fresh AND gate; never merged, never simplified.
    NodeId make_and_fresh(NodeId a, NodeId b);

    /// Fresh XOR gate; never merged, never simplified.
    NodeId make_xor_fresh(NodeId a, NodeId b);

    /// Register a primary output.  The same node may drive several outputs.
    void add_output(std::string name, NodeId node);

    // --- Inspection -------------------------------------------------------

    [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
    [[nodiscard]] const Node& node(NodeId id) const { return nodes_.at(id); }
    [[nodiscard]] const std::vector<Port>& inputs() const noexcept { return inputs_; }
    [[nodiscard]] const std::vector<Port>& outputs() const noexcept { return outputs_; }

    /// Index of a named input among inputs(), or -1.  O(1): served by a
    /// name->index map maintained by add_input (port matching in
    /// equivalence/BDD checks and add_input's own uniqueness check call this
    /// per port, which was quadratic on m=571 builds with the linear scan).
    [[nodiscard]] int input_index(const std::string& name) const;

    /// Index of the first output with this name among outputs(), or -1.
    /// Linear scan: output lookups happen per netlist (locating ced_alarm
    /// after a guard pass), not per port like input matching does.
    [[nodiscard]] int output_index(const std::string& name) const;

    /// Flags for nodes reachable from any output (transitive fanin).
    [[nodiscard]] std::vector<bool> reachable_from_outputs() const;

    /// Fanout count per node, restricted to the reachable subgraph; output
    /// ports count as one fanout each.
    [[nodiscard]] std::vector<int> fanout_counts() const;

    /// Gate counts and depths over the reachable subgraph.
    [[nodiscard]] NetlistStats stats() const;

private:
    [[nodiscard]] NodeId intern(GateKind kind, NodeId a, NodeId b);

    std::vector<Node> nodes_;
    std::vector<Port> inputs_;
    std::vector<Port> outputs_;
    std::unordered_map<std::uint64_t, NodeId> structural_hash_;
    std::unordered_map<std::string, int> input_index_by_name_;
    NodeId const0_ = kInvalidNode;
};

}  // namespace gfr::netlist

#endif  // GFR_NETLIST_NETLIST_H
