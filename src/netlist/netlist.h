#ifndef GFR_NETLIST_NETLIST_H
#define GFR_NETLIST_NETLIST_H

// Gate-level netlist intermediate representation.
//
// The IR models exactly the gate repertoire of the paper's multipliers:
// 2-input AND (partial products a_i*b_j) and 2-input XOR (GF(2) additions),
// plus primary inputs and the constant 0.  Nodes live in a flat vector and
// are created strictly bottom-up, so the vector order *is* a topological
// order (every fanin id < node id) — passes and simulation rely on this.
//
// Structural hashing: make_and/make_xor canonicalise commutative fanins and
// return an existing node when one matches, so identical subexpressions
// (e.g. a shared S^j_i term used by several product coefficients) are
// represented once, exactly like the sharing the paper exploits.

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace gfr::netlist {

enum class GateKind : std::uint8_t { Input, Const0, And2, Xor2 };

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = 0xFFFFFFFFU;

/// Hard ceiling on node count: every valid id must stay below the invalid
/// sentinel.  Construction throws std::length_error at the cliff instead of
/// silently wrapping ids.
inline constexpr std::size_t kMaxNodes = static_cast<std::size_t>(kInvalidNode);

namespace detail {

/// Exact structural-hash key.  This replaces the former packed-word key
/// ((kind << 60) | (a << 30) | b): node ids occupy 32 bits, so the 30-bit
/// fields aliased distinct fanin pairs once ids crossed 2^30 — and because
/// the key *is* the gate identity in the hash map, an aliased key did not
/// merely slow a lookup down, it silently merged unrelated gates (flat
/// m >= 1024 netlists head toward that cliff, and the optimizer re-interns
/// whole netlists).  The struct compares field-exact; the hash may collide
/// freely (collisions only cost probes, never identity).
struct StructuralKey {
    std::uint8_t kind = 0;
    NodeId a = kInvalidNode;
    NodeId b = kInvalidNode;
    friend bool operator==(const StructuralKey&, const StructuralKey&) = default;
};

struct StructuralKeyHash {
    [[nodiscard]] std::size_t operator()(const StructuralKey& k) const noexcept {
        // splitmix64 finalizer over the exact (kind, a, b) triple.
        std::uint64_t x = (static_cast<std::uint64_t>(k.a) << 32U) | k.b;
        x += 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(k.kind) + 1);
        x = (x ^ (x >> 30U)) * 0xbf58476d1ce4e5b9ULL;
        x = (x ^ (x >> 27U)) * 0x94d049bb133111ebULL;
        return static_cast<std::size_t>(x ^ (x >> 31U));
    }
};

}  // namespace detail

/// One gate.  For Input/Const0 the fanins are kInvalidNode.
struct Node {
    GateKind kind = GateKind::Const0;
    NodeId a = kInvalidNode;
    NodeId b = kInvalidNode;
};

/// Named primary input or output.
struct Port {
    std::string name;
    NodeId node = kInvalidNode;
};

/// How make_xor_tree arranges a multi-input XOR.
enum class TreeShape : std::uint8_t {
    Balanced,  ///< complete binary tree, depth ceil(log2 n)
    Chain,     ///< left-leaning chain, depth n-1 (the "naive" shape)
};

/// Gate counts and depth profile of the logic reachable from the outputs.
///
/// and_depth / xor_depth are the maximum number of AND / XOR gates on any
/// input-to-output path (counted independently, the convention used by the
/// paper's "T_A + k T_X" delay expressions; all multipliers here have
/// and_depth == 1 because products form a single AND layer).
///
/// All counters and depths are std::int64_t: the flat product families are
/// quadratic in m (m = 1024 already emits ~2M gates before optimization)
/// and derived quantities (gate x depth products, bench deltas) overflowed
/// the old `int` fields long before the counts themselves did.
struct NetlistStats {
    std::int64_t n_inputs = 0;
    std::int64_t n_outputs = 0;
    std::int64_t n_and = 0;
    std::int64_t n_xor = 0;
    std::int64_t and_depth = 0;
    std::int64_t xor_depth = 0;

    /// Total gate count (the area proxy used by the optimizer's reports).
    [[nodiscard]] std::int64_t gates() const noexcept { return n_and + n_xor; }

    /// "T_A + 5T_X" style rendering.
    [[nodiscard]] std::string delay_string() const;
};

class Netlist {
public:
    Netlist() = default;

    // --- Construction ----------------------------------------------------

    /// New primary input.  Names must be unique (checked).
    NodeId add_input(std::string name);

    /// The constant-0 node (created on first use).
    NodeId const0();

    /// AND with simplification (x&x = x, x&0 = 0) and structural hashing.
    NodeId make_and(NodeId a, NodeId b);

    /// XOR with simplification (x^x = 0, x^0 = x) and structural hashing.
    NodeId make_xor(NodeId a, NodeId b);

    /// XOR of an arbitrary list of leaves with the requested shape.
    /// An empty list yields const0; a single leaf is returned unchanged.
    NodeId make_xor_tree(std::span<const NodeId> leaves, TreeShape shape);

    // --- Structural sharing toggle ----------------------------------------
    // With sharing disabled, make_and/make_xor keep their algebraic
    // simplifications (x^x = 0, x&0 = 0, ...) but every surviving gate is a
    // brand-new node: no hash lookup on the way in, and the node is not
    // offered to later intern() calls or find_gate() probes.  This is the
    // *literal* elaboration the flat generator family uses — one gate per
    // operator of the written expression, with all structure recovery left
    // to the optimization pipeline (whose first pass re-interns everything,
    // exactly the load the exact StructuralKey exists for).

    /// Enable/disable hash-consing for subsequent make_and/make_xor calls.
    void set_structural_sharing(bool enabled) noexcept {
        structural_sharing_ = enabled;
    }

    [[nodiscard]] bool structural_sharing() const noexcept {
        return structural_sharing_;
    }

    // --- Fresh (non-interned) gates --------------------------------------
    // Append a brand-new node unconditionally: no simplification, no
    // structural-hash lookup, and the new node is never offered to future
    // intern() calls.  Two users need this guarantee:
    //
    //   - concurrent-error-detection circuits (guard::add_parity_ced),
    //     whose checker logic must be structurally independent of the
    //     multiplier it checks — interning would merge a prediction gate
    //     with the very gate whose fault it exists to catch, making that
    //     fault undetectable by construction;
    //   - verbatim fault-injection clones (netlist::clone_netlist with
    //     intern off), where hashing could simplify the injected fault
    //     away (XOR(a,a) must stay a live, evaluable gate).
    //
    // Equal fanins are legal here (XOR(a,a) evaluates to 0, AND(a,a) to a);
    // downstream passes and exec::Program handle duplicate operands.

    /// Fresh AND gate; never merged, never simplified.
    NodeId make_and_fresh(NodeId a, NodeId b);

    /// Fresh XOR gate; never merged, never simplified.
    NodeId make_xor_fresh(NodeId a, NodeId b);

    /// Register a primary output.  The same node may drive several outputs.
    void add_output(std::string name, NodeId node);

    // --- Protected gates --------------------------------------------------
    // A protected gate is one the optimization passes (src/opt) must keep
    // verbatim: never merged with another gate, never rewritten, never
    // re-interned.  guard::add_parity_ced marks every checker gate it
    // appends — merging a prediction gate with the multiplier gate whose
    // fault it exists to catch would make that fault undetectable by
    // construction.  Passes extend the guarantee to the whole transitive
    // fanin of a protected node (the "frozen cone"), since restructuring
    // logic a checker observes changes the fault patterns the parity groups
    // were chosen to cover.  clone_netlist preserves marks.

    /// Mark a node as protected.  Throws std::out_of_range on a bad id.
    void set_protected(NodeId id);

    [[nodiscard]] bool is_protected(NodeId id) const noexcept {
        return id < protected_.size() && protected_[id] != 0;
    }

    /// Number of protected nodes (0 on any netlist no guard pass touched).
    [[nodiscard]] std::size_t protected_count() const noexcept {
        return protected_count_;
    }

    // --- Inspection -------------------------------------------------------

    [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
    [[nodiscard]] const Node& node(NodeId id) const { return nodes_.at(id); }
    [[nodiscard]] const std::vector<Port>& inputs() const noexcept { return inputs_; }
    [[nodiscard]] const std::vector<Port>& outputs() const noexcept { return outputs_; }

    /// Index of a named input among inputs(), or -1.  O(1): served by a
    /// name->index map maintained by add_input (port matching in
    /// equivalence/BDD checks and add_input's own uniqueness check call this
    /// per port, which was quadratic on m=571 builds with the linear scan).
    [[nodiscard]] int input_index(const std::string& name) const;

    /// Index of the first output with this name among outputs(), or -1.
    /// Linear scan: output lookups happen per netlist (locating ced_alarm
    /// after a guard pass), not per port like input matching does.
    [[nodiscard]] int output_index(const std::string& name) const;

    /// Probe the structural hash: the interned gate matching (kind, a, b)
    /// after the same commutative canonicalisation intern() applies, or
    /// kInvalidNode.  Never creates a node and never applies the make_and/
    /// make_xor simplifications — the optimizer's dry-run costing uses this
    /// to price a candidate structure before committing to build it.
    /// Fresh (non-interned) gates are invisible here by design.
    [[nodiscard]] NodeId find_gate(GateKind kind, NodeId a, NodeId b) const;

    /// Flags for nodes reachable from any output (transitive fanin).
    [[nodiscard]] std::vector<bool> reachable_from_outputs() const;

    /// Fanout count per node, restricted to the reachable subgraph; output
    /// ports count as one fanout each.
    [[nodiscard]] std::vector<int> fanout_counts() const;

    /// Gate counts and depths over the reachable subgraph.
    [[nodiscard]] NetlistStats stats() const;

private:
    [[nodiscard]] NodeId intern(GateKind kind, NodeId a, NodeId b);

    /// Throws std::length_error when appending one more node would reach
    /// kMaxNodes (ids must stay below the kInvalidNode sentinel).
    void check_capacity() const;

    std::vector<Node> nodes_;
    std::vector<Port> inputs_;
    std::vector<Port> outputs_;
    std::unordered_map<detail::StructuralKey, NodeId, detail::StructuralKeyHash>
        structural_hash_;
    std::unordered_map<std::string, int> input_index_by_name_;
    std::vector<std::uint8_t> protected_;  ///< lazily sized; empty = no marks
    std::size_t protected_count_ = 0;
    NodeId const0_ = kInvalidNode;
    bool structural_sharing_ = true;
};

}  // namespace gfr::netlist

#endif  // GFR_NETLIST_NETLIST_H
