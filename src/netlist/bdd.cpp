#include "netlist/bdd.h"

#include <stdexcept>

namespace gfr::netlist {

BddManager::BddManager(int n_vars) : n_vars_{n_vars} {
    if (n_vars < 0 || n_vars > 62) {
        throw std::invalid_argument{"BddManager: variable count must be in [0, 62]"};
    }
    // Terminals: index 0 = false, 1 = true; var = n_vars_ marks a terminal.
    nodes_.push_back(Node{n_vars_, kFalse, kFalse});
    nodes_.push_back(Node{n_vars_, kTrue, kTrue});
}

BddManager::Ref BddManager::make_node(int var, Ref lo, Ref hi) {
    if (lo == hi) {
        return lo;  // reduction rule
    }
    const std::uint64_t key = (static_cast<std::uint64_t>(var) << 56U) ^
                              (static_cast<std::uint64_t>(lo) << 28U) ^ hi;
    const auto it = unique_.find(key);
    if (it != unique_.end()) {
        return it->second;
    }
    const Ref ref = static_cast<Ref>(nodes_.size());
    nodes_.push_back(Node{var, lo, hi});
    unique_.emplace(key, ref);
    return ref;
}

BddManager::Ref BddManager::var(int v) {
    if (v < 0 || v >= n_vars_) {
        throw std::out_of_range{"BddManager::var: variable out of range"};
    }
    return make_node(v, kFalse, kTrue);
}

BddManager::Ref BddManager::apply(Op op, Ref a, Ref b) {
    // Terminal cases.
    if (op == Op::And) {
        if (a == kFalse || b == kFalse) {
            return kFalse;
        }
        if (a == kTrue) {
            return b;
        }
        if (b == kTrue) {
            return a;
        }
        if (a == b) {
            return a;
        }
    } else {  // Xor
        if (a == kFalse) {
            return b;
        }
        if (b == kFalse) {
            return a;
        }
        if (a == b) {
            return kFalse;
        }
    }
    if (a > b) {
        std::swap(a, b);  // both ops commutative: canonicalise the cache key
    }
    const std::uint64_t key = (static_cast<std::uint64_t>(op) << 60U) ^
                              (static_cast<std::uint64_t>(a) << 30U) ^ b;
    const auto it = computed_.find(key);
    if (it != computed_.end()) {
        return it->second;
    }
    const Node& na = nodes_[a];
    const Node& nb = nodes_[b];
    const int top = std::min(na.var, nb.var);
    const Ref a_lo = (na.var == top) ? na.lo : a;
    const Ref a_hi = (na.var == top) ? na.hi : a;
    const Ref b_lo = (nb.var == top) ? nb.lo : b;
    const Ref b_hi = (nb.var == top) ? nb.hi : b;
    const Ref result =
        make_node(top, apply(op, a_lo, b_lo), apply(op, a_hi, b_hi));
    computed_.emplace(key, result);
    return result;
}

BddManager::Ref BddManager::bdd_and(Ref a, Ref b) { return apply(Op::And, a, b); }

BddManager::Ref BddManager::bdd_xor(Ref a, Ref b) { return apply(Op::Xor, a, b); }

BddManager::Ref BddManager::bdd_not(Ref a) { return bdd_xor(a, kTrue); }

bool BddManager::evaluate(Ref f, std::uint64_t assignment) const {
    while (f != kFalse && f != kTrue) {
        const Node& n = nodes_[f];
        f = ((assignment >> n.var) & 1U) ? n.hi : n.lo;
    }
    return f == kTrue;
}

std::optional<std::uint64_t> BddManager::any_sat(Ref f) const {
    if (f == kFalse) {
        return std::nullopt;
    }
    std::uint64_t assignment = 0;
    while (f != kTrue) {
        const Node& n = nodes_[f];
        if (n.lo != kFalse) {
            f = n.lo;
        } else {
            assignment |= std::uint64_t{1} << n.var;
            f = n.hi;
        }
    }
    return assignment;
}

double BddManager::sat_count(Ref f) const {
    // Memoised fraction of assignments satisfying each subfunction.
    std::unordered_map<Ref, double> memo;
    auto density = [&](auto&& self, Ref g) -> double {
        if (g == kFalse) {
            return 0.0;
        }
        if (g == kTrue) {
            return 1.0;
        }
        const auto it = memo.find(g);
        if (it != memo.end()) {
            return it->second;
        }
        const Node& n = nodes_[g];
        const double d = 0.5 * self(self, n.lo) + 0.5 * self(self, n.hi);
        memo.emplace(g, d);
        return d;
    };
    double scale = 1.0;
    for (int i = 0; i < n_vars_; ++i) {
        scale *= 2.0;
    }
    return density(density, f) * scale;
}

std::size_t BddManager::size(Ref f) const {
    std::unordered_map<Ref, bool> seen;
    auto walk = [&](auto&& self, Ref g) -> void {
        if (g == kFalse || g == kTrue || seen.count(g) != 0) {
            return;
        }
        seen.emplace(g, true);
        self(self, nodes_[g].lo);
        self(self, nodes_[g].hi);
    };
    walk(walk, f);
    return seen.size();
}

std::vector<BddManager::Ref> build_output_bdds(BddManager& mgr, const Netlist& nl) {
    if (nl.inputs().size() > 64 ||
        static_cast<int>(nl.inputs().size()) > mgr.var_count()) {
        throw std::invalid_argument{"build_output_bdds: too many inputs for manager"};
    }
    std::vector<BddManager::Ref> value(nl.node_count(), BddManager::kFalse);
    for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
        value[nl.inputs()[i].node] = mgr.var(static_cast<int>(i));
    }
    const auto reachable = nl.reachable_from_outputs();
    for (NodeId id = 0; id < nl.node_count(); ++id) {
        if (!reachable[id]) {
            continue;
        }
        const Node& n = nl.node(id);
        switch (n.kind) {
            case GateKind::Input:
            case GateKind::Const0:
                break;
            case GateKind::And2:
                value[id] = mgr.bdd_and(value[n.a], value[n.b]);
                break;
            case GateKind::Xor2:
                value[id] = mgr.bdd_xor(value[n.a], value[n.b]);
                break;
        }
    }
    std::vector<BddManager::Ref> out;
    out.reserve(nl.outputs().size());
    for (const auto& port : nl.outputs()) {
        out.push_back(value[port.node]);
    }
    return out;
}

std::optional<Mismatch> check_equivalence_bdd(const Netlist& lhs, const Netlist& rhs) {
    if (lhs.inputs().size() != rhs.inputs().size() ||
        lhs.outputs().size() != rhs.outputs().size()) {
        throw std::invalid_argument{"check_equivalence_bdd: interface mismatch"};
    }
    const int n = static_cast<int>(lhs.inputs().size());
    BddManager mgr{n};
    const auto lhs_bdds = build_output_bdds(mgr, lhs);

    // rhs variables must follow lhs input naming.
    std::vector<int> var_of_rhs_input(rhs.inputs().size(), -1);
    for (std::size_t j = 0; j < rhs.inputs().size(); ++j) {
        const int idx = lhs.input_index(rhs.inputs()[j].name);
        if (idx < 0) {
            throw std::invalid_argument{"check_equivalence_bdd: input '" +
                                        rhs.inputs()[j].name + "' missing on lhs"};
        }
        var_of_rhs_input[j] = idx;
    }
    // Build rhs BDDs with remapped variables.
    std::vector<BddManager::Ref> value(rhs.node_count(), BddManager::kFalse);
    for (std::size_t j = 0; j < rhs.inputs().size(); ++j) {
        value[rhs.inputs()[j].node] = mgr.var(var_of_rhs_input[j]);
    }
    const auto reachable = rhs.reachable_from_outputs();
    for (NodeId id = 0; id < rhs.node_count(); ++id) {
        if (!reachable[id]) {
            continue;
        }
        const Node& nd = rhs.node(id);
        switch (nd.kind) {
            case GateKind::Input:
            case GateKind::Const0:
                break;
            case GateKind::And2:
                value[id] = mgr.bdd_and(value[nd.a], value[nd.b]);
                break;
            case GateKind::Xor2:
                value[id] = mgr.bdd_xor(value[nd.a], value[nd.b]);
                break;
        }
    }

    for (std::size_t o = 0; o < lhs.outputs().size(); ++o) {
        // Find the rhs output with the same name.
        const BddManager::Ref* rhs_bdd = nullptr;
        for (std::size_t p = 0; p < rhs.outputs().size(); ++p) {
            if (rhs.outputs()[p].name == lhs.outputs()[o].name) {
                rhs_bdd = &value[rhs.outputs()[p].node];
                break;
            }
        }
        if (rhs_bdd == nullptr) {
            throw std::invalid_argument{"check_equivalence_bdd: output '" +
                                        lhs.outputs()[o].name + "' missing on rhs"};
        }
        const auto miter = mgr.bdd_xor(lhs_bdds[o], *rhs_bdd);
        if (const auto cex = mgr.any_sat(miter)) {
            Mismatch mm;
            mm.output_name = lhs.outputs()[o].name;
            mm.input_bits.resize(static_cast<std::size_t>(n));
            mm.input_names.resize(static_cast<std::size_t>(n));
            for (int i = 0; i < n; ++i) {
                mm.input_bits[static_cast<std::size_t>(i)] =
                    static_cast<std::uint8_t>((*cex >> i) & 1U);
                mm.input_names[static_cast<std::size_t>(i)] =
                    lhs.inputs()[static_cast<std::size_t>(i)].name;
            }
            mm.lhs_value = mgr.evaluate(lhs_bdds[o], *cex);
            mm.rhs_value = mgr.evaluate(*rhs_bdd, *cex);
            return mm;
        }
    }
    return std::nullopt;
}

}  // namespace gfr::netlist
