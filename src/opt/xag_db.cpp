#include "opt/xag_db.h"

#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace gfr::opt::internal {

XagDatabase::XagDatabase(int max_gates) : max_gates_(max_gates) {
    // Layered BFS over tree cost.  buckets[c] lists the truth tables first
    // discovered at cost c; combining a cost-c1 and a cost-c2 function
    // yields a cost-(c1+c2+1) candidate, and scanning total cost in
    // ascending order makes every first discovery minimal.
    std::vector<std::vector<std::uint16_t>> buckets(
        static_cast<std::size_t>(max_gates) + 1);

    const auto discover = [&](std::uint16_t tt, const Entry& e) {
        if (entries_[tt].cost >= 0) {
            return;  // already discovered at equal or lower cost
        }
        entries_[tt] = e;
        buckets[static_cast<std::size_t>(e.cost)].push_back(tt);
        ++size_;
    };

    discover(0x0000, Entry{0, false, 0, 0});
    for (const std::uint16_t leaf : kLeafTruth) {
        discover(leaf, Entry{0, false, leaf, leaf});
    }

    for (int total = 1; total <= max_gates; ++total) {
        for (int c1 = 0; 2 * c1 <= total - 1; ++c1) {
            const int c2 = total - 1 - c1;
            const auto& lhs = buckets[static_cast<std::size_t>(c1)];
            const auto& rhs = buckets[static_cast<std::size_t>(c2)];
            for (std::size_t i = 0; i < lhs.size(); ++i) {
                const std::size_t j_begin = (c1 == c2) ? i + 1 : 0;
                for (std::size_t j = j_begin; j < rhs.size(); ++j) {
                    const std::uint16_t fa = lhs[i];
                    const std::uint16_t fb = rhs[j];
                    const auto cost = static_cast<std::int8_t>(total);
                    discover(static_cast<std::uint16_t>(fa & fb),
                             Entry{cost, true, fa, fb});
                    discover(static_cast<std::uint16_t>(fa ^ fb),
                             Entry{cost, false, fa, fb});
                }
            }
        }
    }
}

const XagDatabase& XagDatabase::instance(int max_gates) {
    if (max_gates < 1) {
        max_gates = 1;
    }
    if (max_gates > 7) {
        max_gates = 7;  // enumeration cost grows fast; 7 already covers
                        // every cut a <=4-leaf MFFC can free
    }
    static std::mutex mutex;
    static std::map<int, std::unique_ptr<XagDatabase>> registry;
    const std::lock_guard<std::mutex> lock{mutex};
    auto& slot = registry[max_gates];
    if (!slot) {
        slot.reset(new XagDatabase(max_gates));
    }
    return *slot;
}

}  // namespace gfr::opt::internal
