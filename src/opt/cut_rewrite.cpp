// DAG-aware <=4-input cut rewriting (mockturtle-style, adapted to the
// inverter-free AND/XOR basis).
//
// For every non-frozen gate, processed in topological order while the
// destination netlist is rebuilt bottom-up, the pass enumerates up to
// cuts_per_node cuts of at most four leaves (truth tables stitched during
// the merge), looks each cut function up in the optimal-subcircuit
// database, and prices the candidate implementation by *dry-running* it
// against the destination's structural hash: a candidate gate that already
// exists (built by another cone, or by an earlier rewrite) costs nothing.
// The benefit side counts the gate the default rebuild would add plus the
// cut's MFFC — interior cone nodes whose every fanout lies inside the cone
// and whose destination image serves no other source node; those become
// dead the moment the root stops referencing them and the final sweep
// collects them.  A candidate is committed only when benefit exceeds cost,
// so a round can only shrink the reachable gate count.

#include "opt/internal.h"
#include "opt/opt.h"
#include "opt/xag_db.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace gfr::opt {

using netlist::GateKind;
using netlist::kInvalidNode;
using netlist::Netlist;
using netlist::NodeId;

namespace {

constexpr int kMaxLeaves = 4;
constexpr std::size_t kMaxConeNodes = 64;  ///< skip cuts with larger cones

struct Cut {
    std::uint8_t size = 0;
    std::array<NodeId, kMaxLeaves> leaves{};  ///< ascending node ids
    std::uint16_t tt = 0;  ///< function over leaves in 4-var space
};

/// Expand a truth table from a cut's own leaf positions to positions in a
/// merged leaf list (both ascending).
std::uint16_t expand_truth(std::uint16_t tt, const Cut& cut,
                           const std::array<NodeId, kMaxLeaves>& merged,
                           int merged_size) {
    std::array<int, kMaxLeaves> pos{};  // cut leaf index -> merged index
    for (int i = 0; i < cut.size; ++i) {
        for (int j = 0; j < merged_size; ++j) {
            if (merged[static_cast<std::size_t>(j)] ==
                cut.leaves[static_cast<std::size_t>(i)]) {
                pos[static_cast<std::size_t>(i)] = j;
                break;
            }
        }
    }
    std::uint16_t out = 0;
    for (unsigned m = 0; m < 16; ++m) {
        unsigned idx = 0;
        for (int i = 0; i < cut.size; ++i) {
            if ((m >> pos[static_cast<std::size_t>(i)]) & 1U) {
                idx |= 1U << i;
            }
        }
        if ((tt >> idx) & 1U) {
            out |= static_cast<std::uint16_t>(1U << m);
        }
    }
    return out;
}

struct DryResult {
    NodeId node = kInvalidNode;  ///< resolved existing dst node, if any
    int new_gates = 0;
};

/// Price a database structure against the destination netlist without
/// building anything.  `leaf_node[j]` is the dst image of merged leaf j;
/// `resolved` collects every existing dst node the candidate would reuse
/// (so the MFFC estimate can exclude them from "freed").
DryResult dry_run(std::uint16_t tt, const internal::XagDatabase& db,
                  const std::array<NodeId, kMaxLeaves>& leaf_node,
                  NodeId dst_zero, const Netlist& dst,
                  std::unordered_map<std::uint16_t, DryResult>& memo,
                  std::vector<NodeId>& resolved) {
    if (tt == 0) {
        return DryResult{dst_zero, 0};
    }
    for (int j = 0; j < kMaxLeaves; ++j) {
        if (tt == internal::kLeafTruth[static_cast<std::size_t>(j)]) {
            return DryResult{leaf_node[static_cast<std::size_t>(j)], 0};
        }
    }
    if (const auto it = memo.find(tt); it != memo.end()) {
        return it->second;
    }
    const auto& e = db.entry(tt);
    DryResult r;
    const DryResult la =
        dry_run(e.fa, db, leaf_node, dst_zero, dst, memo, resolved);
    const DryResult lb =
        dry_run(e.fb, db, leaf_node, dst_zero, dst, memo, resolved);
    r.new_gates = la.new_gates + lb.new_gates;
    if (la.node != kInvalidNode && lb.node != kInvalidNode) {
        const NodeId hit = dst.find_gate(e.is_and ? GateKind::And2 : GateKind::Xor2,
                                         la.node, lb.node);
        if (hit != kInvalidNode) {
            r.node = hit;
            resolved.push_back(hit);
        } else {
            ++r.new_gates;
        }
    } else {
        ++r.new_gates;
    }
    memo.emplace(tt, r);
    return r;
}

/// Build a database structure for real (memoized per call, interned).
NodeId build_structure(std::uint16_t tt, const internal::XagDatabase& db,
                       const std::array<NodeId, kMaxLeaves>& leaf_node,
                       Netlist& dst,
                       std::unordered_map<std::uint16_t, NodeId>& memo) {
    if (tt == 0) {
        return dst.const0();
    }
    for (int j = 0; j < kMaxLeaves; ++j) {
        if (tt == internal::kLeafTruth[static_cast<std::size_t>(j)]) {
            return leaf_node[static_cast<std::size_t>(j)];
        }
    }
    if (const auto it = memo.find(tt); it != memo.end()) {
        return it->second;
    }
    const auto& e = db.entry(tt);
    const NodeId a = build_structure(e.fa, db, leaf_node, dst, memo);
    const NodeId b = build_structure(e.fb, db, leaf_node, dst, memo);
    const NodeId out = e.is_and ? dst.make_and(a, b) : dst.make_xor(a, b);
    memo.emplace(tt, out);
    return out;
}

}  // namespace

PassResult rewrite_cuts(const Netlist& nl, const RewriteOptions& options) {
    const std::size_t n = nl.node_count();
    const auto reachable = nl.reachable_from_outputs();
    const auto frozen = internal::frozen_nodes(nl);
    const auto& db = internal::XagDatabase::instance(options.max_database_gates);
    const int cuts_cap = std::max(2, options.cuts_per_node);

    // Source-side fanout adjacency over the reachable subgraph; output
    // ports count as one extra (non-removable) fanout.
    std::vector<std::vector<NodeId>> fanouts(n);
    std::vector<std::uint32_t> output_refs(n, 0);
    for (NodeId id = 0; id < n; ++id) {
        if (!reachable[id]) {
            continue;
        }
        const auto& node = nl.node(id);
        if (node.kind == GateKind::And2 || node.kind == GateKind::Xor2) {
            fanouts[node.a].push_back(id);
            fanouts[node.b].push_back(id);
        }
    }
    for (const auto& port : nl.outputs()) {
        ++output_refs[port.node];
    }

    Netlist dst;
    const NodeId dst_zero = dst.const0();
    std::vector<NodeId> memo(n, kInvalidNode);
    std::vector<std::uint32_t> dst_src_count{1};  // const0 counts as shared
    const auto note_mapping = [&](NodeId dst_id) {
        if (dst_id >= dst_src_count.size()) {
            dst_src_count.resize(static_cast<std::size_t>(dst_id) + 1, 0);
        }
        ++dst_src_count[dst_id];
    };

    std::vector<std::vector<Cut>> cuts(n);
    std::vector<std::string> input_name(n);
    for (const auto& port : nl.inputs()) {
        input_name[port.node] = port.name;
    }

    // Scratch reused across nodes.
    std::vector<Cut> merged_cuts;
    std::vector<NodeId> cone;
    std::vector<std::uint8_t> in_cone(n, 0);
    std::vector<std::uint8_t> in_mffc(n, 0);

    const auto trivial_cut = [](NodeId id) {
        Cut c;
        c.size = 1;
        c.leaves[0] = id;
        c.tt = internal::kLeafTruth[0];
        return c;
    };

    for (NodeId id = 0; id < n; ++id) {
        const auto& node = nl.node(id);
        if (node.kind == GateKind::Input) {
            memo[id] = dst.add_input(input_name[id]);
            note_mapping(memo[id]);
            if (nl.is_protected(id)) {
                dst.set_protected(memo[id]);
            }
            cuts[id] = {trivial_cut(id)};
            continue;
        }
        if (node.kind == GateKind::Const0) {
            if (reachable[id] || frozen[id]) {
                memo[id] = dst_zero;
                note_mapping(dst_zero);
            }
            continue;  // const0 never appears as a cut leaf (tt handles it)
        }
        if (!reachable[id] && !frozen[id]) {
            continue;  // dead
        }
        const NodeId fa = memo[node.a];
        const NodeId fb = memo[node.b];
        if (frozen[id]) {
            // Verbatim rebuild; cuts stop here so no cone ever crosses
            // frozen logic.
            memo[id] = (node.kind == GateKind::And2) ? dst.make_and_fresh(fa, fb)
                                                     : dst.make_xor_fresh(fa, fb);
            note_mapping(memo[id]);
            if (nl.is_protected(id)) {
                dst.set_protected(memo[id]);
            }
            cuts[id] = {trivial_cut(id)};
            continue;
        }
        // A fanin may be a dead Const0 sibling only when unreachable; both
        // fanins of a reachable gate are mapped here.

        // --- Cut enumeration (source side) -------------------------------
        merged_cuts.clear();
        const auto fanin_cuts = [&](NodeId f) -> const std::vector<Cut>& {
            return cuts[f];
        };
        for (const Cut& ca : fanin_cuts(node.a)) {
            for (const Cut& cb : fanin_cuts(node.b)) {
                std::array<NodeId, kMaxLeaves> merged{};
                int size = 0;
                bool ok = true;
                const auto add_leaf = [&](NodeId leaf) {
                    for (int i = 0; i < size; ++i) {
                        if (merged[static_cast<std::size_t>(i)] == leaf) {
                            return;
                        }
                    }
                    if (size == kMaxLeaves) {
                        ok = false;
                        return;
                    }
                    merged[static_cast<std::size_t>(size++)] = leaf;
                };
                for (int i = 0; i < ca.size && ok; ++i) {
                    add_leaf(ca.leaves[static_cast<std::size_t>(i)]);
                }
                for (int i = 0; i < cb.size && ok; ++i) {
                    add_leaf(cb.leaves[static_cast<std::size_t>(i)]);
                }
                if (!ok) {
                    continue;
                }
                std::sort(merged.begin(), merged.begin() + size);
                const std::uint16_t ta = expand_truth(ca.tt, ca, merged, size);
                const std::uint16_t tb = expand_truth(cb.tt, cb, merged, size);
                Cut c;
                c.size = static_cast<std::uint8_t>(size);
                c.leaves = merged;
                c.tt = (node.kind == GateKind::And2)
                           ? static_cast<std::uint16_t>(ta & tb)
                           : static_cast<std::uint16_t>(ta ^ tb);
                // Dedupe on the leaf set.
                bool dup = false;
                for (const Cut& seen : merged_cuts) {
                    if (seen.size == c.size && seen.leaves == c.leaves) {
                        dup = true;
                        break;
                    }
                }
                if (!dup) {
                    merged_cuts.push_back(c);
                }
            }
        }
        std::stable_sort(merged_cuts.begin(), merged_cuts.end(),
                         [](const Cut& x, const Cut& y) { return x.size < y.size; });
        if (static_cast<int>(merged_cuts.size()) > cuts_cap) {
            merged_cuts.resize(static_cast<std::size_t>(cuts_cap));
        }

        // --- Default rebuild price ---------------------------------------
        const GateKind kind = node.kind;
        NodeId default_node = kInvalidNode;
        if (fa == fb) {
            default_node = (kind == GateKind::And2) ? fa : dst_zero;
        } else if (fa == dst_zero || fb == dst_zero) {
            default_node =
                (kind == GateKind::And2) ? dst_zero : (fa == dst_zero ? fb : fa);
        } else {
            default_node = dst.find_gate(kind, fa, fb);
        }
        if (default_node != kInvalidNode) {
            // Sharing or simplification makes the default free; no
            // candidate can beat cost zero plus an intact cone.
            memo[id] = default_node;
            note_mapping(default_node);
            cuts[id] = std::move(merged_cuts);
            cuts[id].push_back(trivial_cut(id));
            continue;
        }

        // --- Candidate evaluation ----------------------------------------
        int best_gain = 0;
        std::uint16_t best_tt = 0;
        std::array<NodeId, kMaxLeaves> best_leaf_node{};
        std::unordered_map<std::uint16_t, DryResult> dry_memo;
        std::vector<NodeId> resolved;
        for (const Cut& c : merged_cuts) {
            if (c.size == 1 && c.leaves[0] == id) {
                continue;  // trivial self-cut
            }
            const auto& entry = db.entry(c.tt);
            if (entry.cost < 0) {
                continue;  // function beyond the database bound
            }
            std::array<NodeId, kMaxLeaves> leaf_node{};
            leaf_node.fill(kInvalidNode);
            for (int j = 0; j < c.size; ++j) {
                leaf_node[static_cast<std::size_t>(j)] =
                    memo[c.leaves[static_cast<std::size_t>(j)]];
            }
            dry_memo.clear();
            resolved.clear();
            const DryResult priced = dry_run(c.tt, db, leaf_node, dst_zero, dst,
                                             dry_memo, resolved);

            // MFFC of id w.r.t. this cut: interior cone nodes every one of
            // whose fanouts stays inside the cone (output-driving, frozen
            // and candidate-reused nodes excluded) — dead after rewrite.
            cone.clear();
            bool cone_ok = true;
            {
                std::vector<NodeId> stack{id};
                in_cone[id] = 1;
                while (!stack.empty() && cone_ok) {
                    const NodeId v = stack.back();
                    stack.pop_back();
                    cone.push_back(v);
                    if (cone.size() > kMaxConeNodes) {
                        cone_ok = false;
                        break;
                    }
                    bool is_leaf = false;
                    for (int j = 0; j < c.size; ++j) {
                        if (c.leaves[static_cast<std::size_t>(j)] == v) {
                            is_leaf = true;
                            break;
                        }
                    }
                    if (is_leaf || v == kInvalidNode) {
                        continue;
                    }
                    const auto& vn = nl.node(v);
                    if (vn.kind != GateKind::And2 && vn.kind != GateKind::Xor2) {
                        continue;
                    }
                    for (const NodeId f : {vn.a, vn.b}) {
                        if (!in_cone[f]) {
                            in_cone[f] = 1;
                            stack.push_back(f);
                        }
                    }
                }
            }
            int freed = 0;
            if (cone_ok) {
                // Descending id order: fanouts have larger ids, so their
                // MFFC status is known before their fanins are visited.
                std::sort(cone.begin(), cone.end(),
                          [](NodeId x, NodeId y) { return x > y; });
                for (const NodeId v : cone) {
                    if (v == id) {
                        in_mffc[v] = 1;
                        continue;
                    }
                    bool is_leaf = false;
                    for (int j = 0; j < c.size; ++j) {
                        if (c.leaves[static_cast<std::size_t>(j)] == v) {
                            is_leaf = true;
                            break;
                        }
                    }
                    const auto& vn = nl.node(v);
                    const bool gate =
                        vn.kind == GateKind::And2 || vn.kind == GateKind::Xor2;
                    if (is_leaf || !gate || frozen[v] || output_refs[v] > 0) {
                        in_mffc[v] = 0;
                        continue;
                    }
                    bool all_inside = true;
                    for (const NodeId f : fanouts[v]) {
                        if (!in_cone[f] || !in_mffc[f]) {
                            all_inside = false;
                            break;
                        }
                    }
                    in_mffc[v] = all_inside ? 1 : 0;
                    if (all_inside && memo[v] != kInvalidNode &&
                        dst_src_count[memo[v]] == 1 &&
                        std::find(resolved.begin(), resolved.end(), memo[v]) ==
                            resolved.end()) {
                        ++freed;
                    }
                }
            }
            for (const NodeId v : cone) {
                in_cone[v] = 0;
                in_mffc[v] = 0;
            }
            if (!cone_ok) {
                continue;
            }

            const int gain = 1 + freed - priced.new_gates;
            if (gain > best_gain) {
                best_gain = gain;
                best_tt = c.tt;
                best_leaf_node = leaf_node;
            }
        }

        if (best_gain > 0) {
            std::unordered_map<std::uint16_t, NodeId> build_memo;
            memo[id] =
                build_structure(best_tt, db, best_leaf_node, dst, build_memo);
        } else {
            memo[id] = (kind == GateKind::And2) ? dst.make_and(fa, fb)
                                                : dst.make_xor(fa, fb);
        }
        note_mapping(memo[id]);
        cuts[id] = std::move(merged_cuts);
        cuts[id].push_back(trivial_cut(id));
    }

    for (const auto& port : nl.outputs()) {
        NodeId driver = memo[port.node];
        if (options.unsound_for_test && &port == &nl.outputs().front() &&
            !nl.inputs().empty()) {
            // Mutation-tier hook: a deliberately wrong rewrite the
            // post-pass campaign must catch (flips output 0 whenever
            // input 0 is 1).
            driver = dst.make_xor(driver, memo[nl.inputs().front().node]);
        }
        dst.add_output(port.name, driver);
    }

    // Sweep the garbage the rewrites orphaned (and the eager const0 when
    // unused) and compose the maps.
    PassResult swept = strash(dst);
    PassResult out;
    out.netlist = std::move(swept.netlist);
    out.node_map.assign(n, kInvalidNode);
    for (NodeId id = 0; id < n; ++id) {
        if (memo[id] != kInvalidNode) {
            out.node_map[id] = swept.node_map[memo[id]];
        }
    }
    return out;
}

}  // namespace gfr::opt
