#ifndef GFR_OPT_XAG_DB_H
#define GFR_OPT_XAG_DB_H

// Precomputed optimal-subcircuit database for <=4-input functions in the
// AND/XOR basis (an inverter-free XAG).  Because the basis has no
// inverters, the NPN orbit machinery of a full rewriting engine collapses:
// every representable function f satisfies f(0,0,0,0) = 0 and every input
// permutation of a representable function is enumerated directly, so the
// database keys on the raw 16-bit truth table — no canonicalisation on
// lookup.
//
// Construction is a layered BFS over tree cost: layer 0 holds the four
// input projections and the constant 0; layer c holds every function first
// expressible as AND/XOR of two earlier-layer functions with cost sum
// c - 1.  First discovery is minimal under the tree-cost metric (costs are
// additive and positive).  Tree cost ignores sharing between the two
// operand cones — the rewriter prices real DAG cost at rewrite time by
// dry-running candidates against the destination netlist's structural
// hash, so the database only has to propose good structures, not certify
// their cost.

#include <array>
#include <cstdint>

namespace gfr::opt::internal {

/// Truth tables of the four leaf variables in 4-variable (16-row) space.
inline constexpr std::array<std::uint16_t, 4> kLeafTruth = {0xAAAA, 0xCCCC,
                                                            0xF0F0, 0xFF00};

class XagDatabase {
public:
    struct Entry {
        std::int8_t cost = -1;  ///< -1 = function not in the database
        bool is_and = false;    ///< root gate kind (meaningful when cost > 0)
        std::uint16_t fa = 0;   ///< fanin truth tables (cost > 0)
        std::uint16_t fb = 0;
    };

    /// Shared database enumerated up to `max_gates` tree cost.  Built once
    /// per distinct bound (magic static registry, thread-safe); the default
    /// bound builds in milliseconds.
    static const XagDatabase& instance(int max_gates);

    /// Entry for a truth table; entry.cost < 0 when the function needs more
    /// than max_gates gates.  Leaves and the constant have cost 0.
    [[nodiscard]] const Entry& entry(std::uint16_t tt) const noexcept {
        return entries_[tt];
    }

    [[nodiscard]] int max_gates() const noexcept { return max_gates_; }

    /// Functions reachable within the bound (database size, for reports).
    [[nodiscard]] int size() const noexcept { return size_; }

private:
    explicit XagDatabase(int max_gates);

    std::array<Entry, 65536> entries_{};
    int max_gates_ = 0;
    int size_ = 0;
};

}  // namespace gfr::opt::internal

#endif  // GFR_OPT_XAG_DB_H
