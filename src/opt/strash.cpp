#include "opt/internal.h"
#include "opt/opt.h"

#include <string>
#include <vector>

namespace gfr::opt {

using netlist::GateKind;
using netlist::kInvalidNode;
using netlist::Netlist;
using netlist::NodeId;

namespace internal {

std::vector<bool> frozen_nodes(const Netlist& nl) {
    const std::size_t n = nl.node_count();
    std::vector<bool> frozen(n, false);
    if (nl.protected_count() == 0) {
        return frozen;
    }
    std::vector<NodeId> stack;
    for (NodeId id = 0; id < n; ++id) {
        if (nl.is_protected(id)) {
            frozen[id] = true;
            stack.push_back(id);
        }
    }
    while (!stack.empty()) {
        const NodeId id = stack.back();
        stack.pop_back();
        const auto& node = nl.node(id);
        for (const NodeId fi : {node.a, node.b}) {
            if (fi != kInvalidNode && !frozen[fi]) {
                frozen[fi] = true;
                stack.push_back(fi);
            }
        }
    }
    return frozen;
}

}  // namespace internal

PassResult strash(const Netlist& nl) {
    const std::size_t n = nl.node_count();
    const auto reachable = nl.reachable_from_outputs();
    const auto frozen = internal::frozen_nodes(nl);

    PassResult r;
    r.node_map.assign(n, kInvalidNode);
    auto& dst = r.netlist;

    std::vector<std::string> input_name(n);
    for (const auto& port : nl.inputs()) {
        input_name[port.node] = port.name;
    }

    for (NodeId id = 0; id < n; ++id) {
        const auto& node = nl.node(id);
        switch (node.kind) {
            case GateKind::Input:
                // Inputs survive even when dead: the interface is part of
                // the netlist's contract (verification matches ports).
                r.node_map[id] = dst.add_input(input_name[id]);
                break;
            case GateKind::Const0:
                if (reachable[id] || frozen[id]) {
                    r.node_map[id] = dst.const0();
                }
                break;
            case GateKind::And2:
            case GateKind::Xor2: {
                if (!reachable[id] && !frozen[id]) {
                    break;  // swept
                }
                const NodeId fa = r.node_map[node.a];
                const NodeId fb = r.node_map[node.b];
                if (frozen[id]) {
                    // Verbatim rebuild: fresh gate, out of reach of the
                    // structural hash, exactly as the guard pass built it.
                    r.node_map[id] = (node.kind == GateKind::And2)
                                         ? dst.make_and_fresh(fa, fb)
                                         : dst.make_xor_fresh(fa, fb);
                } else {
                    r.node_map[id] = (node.kind == GateKind::And2)
                                         ? dst.make_and(fa, fb)
                                         : dst.make_xor(fa, fb);
                }
                break;
            }
        }
        if (r.node_map[id] != kInvalidNode && nl.is_protected(id)) {
            dst.set_protected(r.node_map[id]);
        }
    }

    for (const auto& port : nl.outputs()) {
        dst.add_output(port.name, r.node_map[port.node]);
    }
    return r;
}

}  // namespace gfr::opt
