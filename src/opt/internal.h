#ifndef GFR_OPT_INTERNAL_H
#define GFR_OPT_INTERNAL_H

// Shared helpers of the optimization passes (not part of the public API).

#include "netlist/netlist.h"

#include <cstdint>
#include <vector>

namespace gfr::opt::internal {

/// Frozen-cone flags: a node is frozen iff it is protected or lies in the
/// transitive fanin of a protected node.  Frozen logic must be rebuilt
/// verbatim (fresh gates, marks preserved) by every pass — restructuring
/// anything a CED checker observes changes the fault patterns its parity
/// groups were selected to cover.
[[nodiscard]] std::vector<bool> frozen_nodes(const netlist::Netlist& nl);

/// splitmix64 — deterministic signature/seed derivation for the passes.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30U)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27U)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31U);
}

}  // namespace gfr::opt::internal

#endif  // GFR_OPT_INTERNAL_H
