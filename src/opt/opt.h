#ifndef GFR_OPT_OPT_H
#define GFR_OPT_OPT_H

// Netlist optimization pipeline (ROADMAP item 2): the repo generated,
// mapped, verified and guarded multiplier netlists but never *optimized*
// them.  This layer adds four mockturtle-style passes over the AND/XOR IR:
//
//   strash             — re-intern an arbitrary netlist bottom-up: constant
//                        folding, duplicate-gate merging (structural
//                        hashing) and dead-logic sweep in one pass.  Today
//                        only generator-emitted gates get interned; fresh
//                        gates (CED checkers, fault clones) and any logic a
//                        pass left dead never did.
//   rewrite_cuts       — DAG-aware rewriting of <=4-input cuts against a
//                        precomputed optimal-subcircuit database (XAG
//                        functions enumerated to minimal tree cost; the
//                        AND/XOR basis has no inverters, so truth tables
//                        are keyed directly, no NPN canonicalisation
//                        needed).  A candidate is priced by dry-running it
//                        against the destination's structural hash
//                        (find_gate), so sharing with logic that already
//                        exists counts as free — replacements win either by
//                        needing fewer gates or by reusing gates other
//                        cones already built.
//   reduce_functional  — functional reduction: random-pattern signatures
//                        group candidate-equivalent nodes, every merge is
//                        confirmed by netlist::check_equivalence on the
//                        extracted cones before it is applied.
//   restructure        — global XOR restructuring reusing the synthesis
//                        passes (group_common_cones / fast-extract pair
//                        CSE / depth balancing), best-of over strategies.
//
// optimize() chains them and gates EVERY pass with the equivalence
// campaign (netlist::check_equivalence rides verify::Campaign): a pass
// whose output is not equivalent to its input throws VerificationError and
// nothing downstream ever sees the bad netlist.  The mutation tier proves
// the gate bites (RewriteOptions::unsound_for_test).
//
// Protected gates (guard::add_parity_ced checker logic) are never merged,
// rewritten or re-interned.  A node is *frozen* iff it is protected or in
// the transitive fanin of a protected node; frozen logic is rebuilt
// verbatim through the fresh (non-interned) gate API with marks preserved.
// On a guarded netlist the entire multiplier sits in the actual-parity
// trees' fanin, so the pipeline is intentionally ~identity there: optimize
// first, then guard (the README documents the order).

#include "netlist/equivalence.h"
#include "netlist/netlist.h"

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace gfr::field {
class Field;  // field/gf2m.h
}

namespace gfr::opt {

/// Result of one pass: the rebuilt netlist plus an old-id -> new-id map
/// (kInvalidNode for source nodes the pass dropped as dead).  Input and
/// output ports keep their names and order, so any pass output is a drop-in
/// for the original everywhere in the repo.
struct PassResult {
    netlist::Netlist netlist;
    std::vector<netlist::NodeId> node_map;
};

/// Strash/sweep: bottom-up re-intern of the whole netlist.
PassResult strash(const netlist::Netlist& nl);

struct RewriteOptions {
    /// Database depth: minimal implementations enumerated up to this many
    /// gates per <=4-input function (tree cost; DAG sharing is priced at
    /// rewrite time against the destination netlist).
    int max_database_gates = 5;
    /// Cuts kept per node during enumeration.
    int cuts_per_node = 8;
    /// Mutation-tier hook: XOR output 0's driver with primary input 0, a
    /// deliberately unsound rewrite the post-pass campaign must catch.
    bool unsound_for_test = false;
};

/// DAG-aware <=4-cut database rewriting.
PassResult rewrite_cuts(const netlist::Netlist& nl,
                        const RewriteOptions& options = {});

struct ReduceOptions {
    /// 64-lane random signature words per node (4 => 256 patterns).
    int signature_words = 4;
    std::uint64_t seed = 0xF12EDULL;
    /// Upper bound on check_equivalence cone confirmations per run (a
    /// safety valve on adversarial inputs; candidates beyond it stay
    /// unmerged, which is always sound).
    int max_confirmations = 4096;
};

/// Functional reduction via simulation signatures + cone equivalence.
PassResult reduce_functional(const netlist::Netlist& nl,
                             const ReduceOptions& options = {});

/// One pipeline stage's before/after record.
struct PassReport {
    std::string pass;
    std::int64_t gates_before = 0;
    std::int64_t gates_after = 0;
    std::int64_t xor_depth_before = 0;
    std::int64_t xor_depth_after = 0;
    bool verified = false;  ///< equivalence campaign ran and passed
};

/// A pass produced a netlist that is NOT equivalent to its input.  Carries
/// the failing pass name and the campaign's counterexample.
class VerificationError : public std::runtime_error {
public:
    VerificationError(std::string pass, const std::string& detail)
        : std::runtime_error("opt: pass '" + pass +
                             "' failed post-pass verification: " + detail),
          pass_(std::move(pass)) {}

    [[nodiscard]] const std::string& pass() const noexcept { return pass_; }

private:
    std::string pass_;
};

struct OptOptions {
    bool strash = true;
    /// Global XOR restructuring via the synthesis passes.  Automatically
    /// skipped when the netlist carries protected gates (the synthesis
    /// passes are not protection-aware); it also invalidates the node map.
    bool restructure = true;
    /// Cut-rewriting rounds (0 disables); rounds stop early when a round
    /// stops improving the gate count.
    int rewrite_rounds = 2;
    bool reduce = true;
    RewriteOptions rewrite{};
    ReduceOptions reduction{};
    /// Gate every pass with the equivalence campaign.  Leave on; the off
    /// switch exists for benchmarking the passes themselves.
    bool verify_each_pass = true;
    netlist::EquivalenceOptions verify{};
    /// Opt-in algebraic post-gate: after the last pass, PROVE the optimized
    /// netlist computes A*B in this field via acv::prove_multiplier — a
    /// zero-simulation check of the end result against the word-level spec,
    /// independent of the per-pass equivalence campaigns (which compare
    /// netlist to netlist, not netlist to spec).  Failure throws
    /// VerificationError with pass name "algebraic".  The Field must
    /// outlive the call.  nullptr (default) skips the gate.
    const field::Field* algebraic_spec = nullptr;
};

struct OptResult {
    netlist::Netlist netlist;
    std::vector<PassReport> passes;
    /// Composed old-id -> new-id map across all executed passes, valid only
    /// when node_map_valid (the restructure stage rebuilds from flattened
    /// equations and cannot produce one).  On guarded netlists restructure
    /// is skipped, so CED bookkeeping (CedInfo::covered_sites) can always
    /// be remapped through this.
    std::vector<netlist::NodeId> node_map;
    bool node_map_valid = false;

    /// Total gate delta across the pipeline.
    [[nodiscard]] std::int64_t gates_before() const noexcept {
        return passes.empty() ? 0 : passes.front().gates_before;
    }
    [[nodiscard]] std::int64_t gates_after() const noexcept {
        return passes.empty() ? 0 : passes.back().gates_after;
    }
};

/// Run the full campaign-gated pipeline.  Throws VerificationError if any
/// pass fails its equivalence check.
OptResult optimize(const netlist::Netlist& nl, const OptOptions& options = {});

}  // namespace gfr::opt

#endif  // GFR_OPT_OPT_H
