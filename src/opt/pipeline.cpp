// The campaign-gated pipeline: strash -> restructure -> rewrite rounds ->
// functional reduction -> final strash.  After every stage the candidate is
// checked for combinational equivalence against the stage's input; a
// failing stage throws VerificationError and its output is discarded, so
// nothing downstream (mappers, emitters, reports, guards) ever consumes an
// unverified netlist.

#include "opt/opt.h"

#include "acv/acv.h"
#include "netlist/clone.h"
#include "netlist/equivalence.h"
#include "netlist/passes.h"

#include <optional>
#include <utility>
#include <vector>

namespace gfr::opt {

using netlist::kInvalidNode;
using netlist::Netlist;
using netlist::NodeId;

namespace {

std::vector<NodeId> compose_maps(const std::vector<NodeId>& first,
                                 const std::vector<NodeId>& second) {
    std::vector<NodeId> out(first.size(), kInvalidNode);
    for (std::size_t i = 0; i < first.size(); ++i) {
        const NodeId mid = first[i];
        if (mid != kInvalidNode && mid < second.size()) {
            out[i] = second[mid];
        }
    }
    return out;
}

}  // namespace

OptResult optimize(const Netlist& nl, const OptOptions& options) {
    OptResult result;
    // Verbatim replica: 1:1 node ids seed the composed map, and guarded
    // inputs must not have their fresh checker gates re-interned here.
    result.netlist = netlist::clone_netlist(nl, {.intern = false});
    result.node_map.resize(nl.node_count());
    for (NodeId id = 0; id < nl.node_count(); ++id) {
        result.node_map[id] = id;
    }
    result.node_map_valid = true;

    // Run one stage: verify candidate against the current netlist, record
    // the report, and commit.  `map` is the stage's old->new map, or empty
    // when the stage cannot produce one (restructure).
    const auto commit = [&](const char* name, Netlist&& candidate,
                            std::vector<NodeId>&& map) {
        PassReport report;
        report.pass = name;
        const auto before = result.netlist.stats();
        const auto after = candidate.stats();
        report.gates_before = before.gates();
        report.gates_after = after.gates();
        report.xor_depth_before = before.xor_depth;
        report.xor_depth_after = after.xor_depth;
        if (options.verify_each_pass) {
            const auto mismatch =
                netlist::check_equivalence(result.netlist, candidate,
                                           options.verify);
            if (mismatch) {
                throw VerificationError(name, mismatch->to_string());
            }
            report.verified = true;
        }
        if (map.empty()) {
            result.node_map_valid = false;
        } else if (result.node_map_valid) {
            result.node_map = compose_maps(result.node_map, map);
        }
        result.netlist = std::move(candidate);
        result.passes.push_back(std::move(report));
    };

    if (options.strash) {
        PassResult r = strash(result.netlist);
        commit("strash", std::move(r.netlist), std::move(r.node_map));
    }

    if (options.restructure && result.netlist.protected_count() == 0) {
        // Global XOR restructuring via the synthesis passes: best-of over
        // two strategies (ANF regrouping by output signature, and plain
        // fast-extract), mirroring the FPGA flow's strategy search.  These
        // rebuild from flattened equations, so no node map survives; they
        // are skipped entirely on guarded netlists (protected gates).
        netlist::SynthOptions grouped;
        grouped.flatten_anf = true;
        grouped.group_cones = true;
        grouped.extract_pairs = true;
        grouped.balance = true;
        netlist::SynthOptions extracted;
        extracted.flatten_anf = false;
        extracted.extract_pairs = true;
        extracted.balance = true;

        Netlist best;
        std::int64_t best_gates = -1;
        for (const auto& synth : {grouped, extracted}) {
            Netlist candidate = netlist::synthesize(result.netlist, synth);
            const std::int64_t gates = candidate.stats().gates();
            if (best_gates < 0 || gates < best_gates) {
                best = std::move(candidate);
                best_gates = gates;
            }
        }
        if (best_gates >= 0 && best_gates < result.netlist.stats().gates()) {
            commit("restructure", std::move(best), {});
        }
    }

    for (int round = 0; round < options.rewrite_rounds; ++round) {
        const std::int64_t before = result.netlist.stats().gates();
        PassResult r = rewrite_cuts(result.netlist, options.rewrite);
        const std::int64_t after = r.netlist.stats().gates();
        // Commit even a non-improving round: the result must still pass
        // through the equivalence gate (this is what catches the
        // unsound_for_test hook, whose "rewrite" never improves anything).
        commit("rewrite", std::move(r.netlist), std::move(r.node_map));
        if (after >= before) {
            break;
        }
    }

    if (options.reduce) {
        PassResult r = reduce_functional(result.netlist, options.reduction);
        commit("reduce", std::move(r.netlist), std::move(r.node_map));
    }

    if (options.strash) {
        PassResult r = strash(result.netlist);
        commit("sweep", std::move(r.netlist), std::move(r.node_map));
    }

    if (options.algebraic_spec != nullptr) {
        // End-to-end algebraic gate: prove the PIPELINE OUTPUT computes
        // A*B mod f, independent of the pass-by-pass equivalence chain.  A
        // chain of equivalences anchors to the input netlist; this anchors
        // to the spec itself, so it also catches a wrong netlist fed in.
        PassReport report;
        report.pass = "algebraic";
        const auto stats = result.netlist.stats();
        report.gates_before = report.gates_after = stats.gates();
        report.xor_depth_before = report.xor_depth_after = stats.xor_depth;
        if (const auto failure =
                acv::prove_multiplier(result.netlist, *options.algebraic_spec)) {
            throw VerificationError("algebraic", failure->to_string());
        }
        report.verified = true;
        result.passes.push_back(std::move(report));
    }

    return result;
}

}  // namespace gfr::opt
