// Functional reduction: random-pattern simulation signatures propose
// equivalences the structural hash cannot see (differently-shaped cones
// computing the same function); every proposed merge is confirmed by
// netlist::check_equivalence on the two extracted cones before it is
// applied.  Signatures are 64-lane words, so the default 4 words filter
// candidates through 256 random patterns — for AND/XOR logic of this shape
// a single wrong product term flips about half of all lanes, so surviving
// pairs are almost always genuinely equivalent and the confirmation step
// is cheap in aggregate.
//
// The merge direction is always later-node-into-earlier-representative,
// which keeps the substitution acyclic in the topological node order.
// Frozen nodes (CED checker cones) are excluded from both sides.

#include "opt/internal.h"
#include "opt/opt.h"

#include "netlist/equivalence.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

namespace gfr::opt {

using netlist::GateKind;
using netlist::kInvalidNode;
using netlist::Netlist;
using netlist::NodeId;

namespace {

/// Primary-input support of a cone, as source input node ids (ascending).
std::vector<NodeId> cone_support(const Netlist& nl, NodeId root) {
    std::vector<NodeId> support;
    std::vector<std::uint8_t> seen(nl.node_count(), 0);
    std::vector<NodeId> stack{root};
    seen[root] = 1;
    while (!stack.empty()) {
        const NodeId v = stack.back();
        stack.pop_back();
        const auto& node = nl.node(v);
        if (node.kind == GateKind::Input) {
            support.push_back(v);
            continue;
        }
        if (node.kind != GateKind::And2 && node.kind != GateKind::Xor2) {
            continue;
        }
        for (const NodeId f : {node.a, node.b}) {
            if (!seen[f]) {
                seen[f] = 1;
                stack.push_back(f);
            }
        }
    }
    std::sort(support.begin(), support.end());
    return support;
}

/// Extract the cone of `root` into a standalone netlist whose inputs are
/// exactly `shared_inputs` (source input ids, in source declaration order)
/// and whose single output is named "y".  Giving both cones of a candidate
/// pair the same input interface makes them directly comparable by
/// check_equivalence even when their supports differ.
Netlist extract_cone(const Netlist& nl, NodeId root,
                     const std::vector<NodeId>& shared_inputs) {
    Netlist cone;
    std::unordered_map<NodeId, NodeId> memo;
    for (const NodeId iid : shared_inputs) {
        NodeId mapped = kInvalidNode;
        for (const auto& port : nl.inputs()) {
            if (port.node == iid) {
                mapped = cone.add_input(port.name);
                break;
            }
        }
        memo.emplace(iid, mapped);
    }
    // Iterative post-order build (cones of generated multipliers can be
    // thousands of levels deep before balancing).
    std::vector<std::pair<NodeId, bool>> stack{{root, false}};
    while (!stack.empty()) {
        const auto [v, expanded] = stack.back();
        stack.pop_back();
        if (memo.contains(v)) {
            continue;
        }
        const auto& node = nl.node(v);
        if (node.kind == GateKind::Const0) {
            memo.emplace(v, cone.const0());
            continue;
        }
        if (node.kind == GateKind::Input) {
            // Inputs outside shared_inputs cannot occur: shared_inputs is
            // the union of both cones' supports.
            memo.emplace(v, cone.add_input("unreferenced"));
            continue;
        }
        if (!expanded) {
            stack.push_back({v, true});
            stack.push_back({node.a, false});
            stack.push_back({node.b, false});
            continue;
        }
        const NodeId fa = memo.at(node.a);
        const NodeId fb = memo.at(node.b);
        memo.emplace(v, node.kind == GateKind::And2 ? cone.make_and(fa, fb)
                                                    : cone.make_xor(fa, fb));
    }
    cone.add_output("y", memo.at(root));
    return cone;
}

}  // namespace

PassResult reduce_functional(const Netlist& nl, const ReduceOptions& options) {
    const std::size_t n = nl.node_count();
    const auto reachable = nl.reachable_from_outputs();
    const auto frozen = internal::frozen_nodes(nl);
    const int words = std::clamp(options.signature_words, 1, 16);

    // --- Signatures ------------------------------------------------------
    std::vector<std::uint64_t> sig(n * static_cast<std::size_t>(words), 0);
    const auto sig_at = [&](NodeId id) {
        return sig.data() + static_cast<std::size_t>(id) * words;
    };
    for (NodeId id = 0; id < n; ++id) {
        const auto& node = nl.node(id);
        auto* s = sig_at(id);
        switch (node.kind) {
            case GateKind::Input: {
                const std::uint64_t stream =
                    internal::splitmix64(options.seed ^ (0xA5A5ULL + id));
                for (int w = 0; w < words; ++w) {
                    s[w] = internal::splitmix64(stream +
                                                static_cast<std::uint64_t>(w));
                }
                break;
            }
            case GateKind::Const0:
                break;  // all-zero lanes
            case GateKind::And2:
            case GateKind::Xor2: {
                const auto* sa = sig_at(node.a);
                const auto* sb = sig_at(node.b);
                for (int w = 0; w < words; ++w) {
                    s[w] = (node.kind == GateKind::And2) ? (sa[w] & sb[w])
                                                         : (sa[w] ^ sb[w]);
                }
                break;
            }
        }
    }

    // --- Candidate classes ----------------------------------------------
    // Keyed by a hash of the signature words; exact signature equality is
    // re-checked pairwise, so hash collisions only waste a confirmation.
    std::unordered_map<std::uint64_t, std::vector<NodeId>> classes;
    for (NodeId id = 0; id < n; ++id) {
        if (frozen[id]) {
            continue;
        }
        const auto& node = nl.node(id);
        const bool is_gate =
            node.kind == GateKind::And2 || node.kind == GateKind::Xor2;
        if (!is_gate && node.kind != GateKind::Input &&
            node.kind != GateKind::Const0) {
            continue;
        }
        if (is_gate && !reachable[id]) {
            continue;
        }
        std::uint64_t h = 0x12345678ULL;
        const auto* s = sig_at(id);
        for (int w = 0; w < words; ++w) {
            h = internal::splitmix64(h ^ s[w]);
        }
        classes[h].push_back(id);
    }

    // --- Confirmation ----------------------------------------------------
    std::vector<NodeId> subst(n, kInvalidNode);
    int confirmations = 0;
    netlist::EquivalenceOptions eq;
    eq.seed = internal::splitmix64(options.seed ^ 0xC0FEULL);
    eq.threads = 1;  // cones are small; avoid per-pair pool spin-up
    for (auto& [hash, members] : classes) {
        if (members.size() < 2) {
            continue;
        }
        // Members arrive in ascending id (topological) order.
        for (std::size_t i = 1; i < members.size(); ++i) {
            const NodeId cand = members[i];
            const auto& cnode = nl.node(cand);
            if (cnode.kind != GateKind::And2 && cnode.kind != GateKind::Xor2) {
                continue;  // only gates are merged away
            }
            if (confirmations >= options.max_confirmations) {
                break;
            }
            for (std::size_t j = 0; j < i; ++j) {
                NodeId rep = members[j];
                if (subst[rep] != kInvalidNode) {
                    rep = subst[rep];  // follow an earlier merge
                }
                if (rep >= cand) {
                    continue;
                }
                if (std::memcmp(sig_at(rep), sig_at(cand),
                                static_cast<std::size_t>(words) * 8) != 0) {
                    continue;  // hash collision, not a real candidate
                }
                auto shared = cone_support(nl, rep);
                {
                    const auto extra = cone_support(nl, cand);
                    std::vector<NodeId> merged;
                    std::set_union(shared.begin(), shared.end(), extra.begin(),
                                   extra.end(), std::back_inserter(merged));
                    shared = std::move(merged);
                }
                const Netlist lhs = extract_cone(nl, rep, shared);
                const Netlist rhs = extract_cone(nl, cand, shared);
                ++confirmations;
                if (!netlist::check_equivalence(lhs, rhs, eq)) {
                    subst[cand] = rep;
                    break;
                }
            }
        }
    }

    // --- Rebuild with the substitution applied ---------------------------
    Netlist dst;
    std::vector<NodeId> memo(n, kInvalidNode);
    std::vector<std::string> input_name(n);
    for (const auto& port : nl.inputs()) {
        input_name[port.node] = port.name;
    }
    for (NodeId id = 0; id < n; ++id) {
        const auto& node = nl.node(id);
        if (subst[id] != kInvalidNode) {
            memo[id] = memo[subst[id]];
            continue;
        }
        switch (node.kind) {
            case GateKind::Input:
                memo[id] = dst.add_input(input_name[id]);
                break;
            case GateKind::Const0:
                if (reachable[id] || frozen[id]) {
                    memo[id] = dst.const0();
                }
                break;
            case GateKind::And2:
            case GateKind::Xor2: {
                if (!reachable[id] && !frozen[id]) {
                    break;
                }
                const NodeId fa = memo[node.a];
                const NodeId fb = memo[node.b];
                if (frozen[id]) {
                    memo[id] = (node.kind == GateKind::And2)
                                   ? dst.make_and_fresh(fa, fb)
                                   : dst.make_xor_fresh(fa, fb);
                } else {
                    memo[id] = (node.kind == GateKind::And2)
                                   ? dst.make_and(fa, fb)
                                   : dst.make_xor(fa, fb);
                }
                break;
            }
        }
        if (memo[id] != kInvalidNode && nl.is_protected(id)) {
            dst.set_protected(memo[id]);
        }
    }
    for (const auto& port : nl.outputs()) {
        dst.add_output(port.name, memo[port.node]);
    }

    // Sweep cones orphaned by the merges; compose the maps.
    PassResult swept = strash(dst);
    PassResult out;
    out.netlist = std::move(swept.netlist);
    out.node_map.assign(n, kInvalidNode);
    for (NodeId id = 0; id < n; ++id) {
        if (memo[id] != kInvalidNode) {
            out.node_map[id] = swept.node_map[memo[id]];
        }
    }
    return out;
}

}  // namespace gfr::opt
