#include "guard/parity_ced.h"

#include "verify/campaign.h"

#include <bit>
#include <set>
#include <stdexcept>

namespace gfr::guard {

using netlist::GateKind;
using netlist::Netlist;
using netlist::NodeId;

std::string ced_error_output(int t) { return "ced_err" + std::to_string(t); }

std::string CedInfo::to_string() const {
    return "CED: " + std::to_string(groups) + " parity groups, " +
           std::to_string(covered_sites.size()) + " covered sites (" +
           std::to_string(benign_gates) + " benign, " +
           std::to_string(conditional_gates) + " conditional), +" +
           std::to_string(added_gates) + " checker gates";
}

namespace {

/// One m-bit set over the output coefficients, as (m+63)/64 words.
using BitVec = std::vector<std::uint64_t>;

bool odd_overlap(const BitVec& a, const BitVec& b) {
    int parity = 0;
    for (std::size_t w = 0; w < a.size(); ++w) {
        parity ^= std::popcount(a[w] & b[w]) & 1;
    }
    return parity != 0;
}

bool is_zero(const BitVec& v) {
    for (const auto w : v) {
        if (w != 0) {
            return false;
        }
    }
    return true;
}

bool test_bit(const BitVec& v, int k) {
    return (v[static_cast<std::size_t>(k / 64)] >> (k % 64)) & 1U;
}

/// Coefficient sets of x^s mod f for s = 0 .. 2m-2, each as an m-bit
/// BitVec — the q-constants of the parity-prediction identity, computed by
/// the iterated shift-and-fold the reduction itself performs.
std::vector<BitVec> power_masks(const field::Field& field) {
    const int m = field.degree();
    const std::size_t words = static_cast<std::size_t>((m + 63) / 64);
    const auto mod_words = field.modulus().words();
    // f - y^m: the tail polynomial folded in whenever the shift crosses m.
    BitVec tails(words, 0);
    for (std::size_t w = 0; w < words && w < mod_words.size(); ++w) {
        tails[w] = mod_words[w];
    }
    tails[static_cast<std::size_t>(m / 64) % words] &=
        (m % 64 == 0) ? ~std::uint64_t{0}
                      : ~(std::uint64_t{1} << (m % 64));

    std::vector<BitVec> out;
    out.reserve(static_cast<std::size_t>(2 * m - 1));
    // One spare word so bit m is addressable even when m is a multiple of 64.
    BitVec r(words + 1, 0);
    r[0] = 1;
    for (int s = 0; s < 2 * m - 1; ++s) {
        out.emplace_back(r.begin(), r.begin() + static_cast<std::ptrdiff_t>(words));
        // r <<= 1, then fold bit m back through the tails.
        std::uint64_t carry = 0;
        for (auto& w : r) {
            const std::uint64_t next = w >> 63;
            w = (w << 1) | carry;
            carry = next;
        }
        const std::size_t mw = static_cast<std::size_t>(m / 64);
        const int mb = m % 64;
        if ((r[mw] >> mb) & 1U) {
            r[mw] &= ~(std::uint64_t{1} << mb);
            for (std::size_t w = 0; w < words; ++w) {
                r[w] ^= tails[w];
            }
        }
    }
    return out;
}

/// Balanced XOR tree built entirely from fresh gates.  Duplicate leaves are
/// legal (XOR(x,x) stays a live gate computing 0 — exactly the mod-2
/// cancellation the parity semantics require).
NodeId fresh_xor_tree(Netlist& nl, std::vector<NodeId> level) {
    if (level.empty()) {
        return nl.const0();
    }
    while (level.size() > 1) {
        std::vector<NodeId> next;
        next.reserve((level.size() + 1) / 2);
        for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
            next.push_back(nl.make_xor_fresh(level[i], level[i + 1]));
        }
        if (level.size() % 2 == 1) {
            next.push_back(level.back());
        }
        level = std::move(next);
    }
    return level[0];
}

}  // namespace

CedInfo add_parity_ced(Netlist& nl, const field::Field& field,
                       const CedOptions& options) {
    const int m = field.degree();
    if (static_cast<int>(nl.inputs().size()) != 2 * m ||
        static_cast<int>(nl.outputs().size()) != m) {
        throw std::invalid_argument{
            "add_parity_ced: port count does not match field"};
    }
    for (int i = 0; i < m; ++i) {
        if (nl.inputs()[static_cast<std::size_t>(i)].name !=
                "a" + std::to_string(i) ||
            nl.inputs()[static_cast<std::size_t>(m + i)].name !=
                "b" + std::to_string(i) ||
            nl.outputs()[static_cast<std::size_t>(i)].name !=
                "c" + std::to_string(i)) {
            throw std::invalid_argument{"add_parity_ced: unexpected port naming"};
        }
    }

    const std::size_t n = nl.node_count();
    const std::size_t words = static_cast<std::size_t>((m + 63) / 64);

    // ---- Per-gate output error patterns (reverse-topological sweep) ------
    // pattern[g] bit k = parity of XOR-only paths g -> c_k = whether output
    // k actually flips when g's value flips; conditional[g] marks gates
    // with a path through an AND input (input-dependent propagation, no
    // static pattern).  Node order is topological, so one descending pass
    // sees every consumer before its fanins.
    const auto reachable = nl.reachable_from_outputs();
    std::vector<std::uint64_t> pattern(n * words, 0);
    std::vector<std::uint8_t> conditional(n, 0);
    const auto pat = [&](NodeId id) {
        return pattern.data() + static_cast<std::size_t>(id) * words;
    };
    for (int k = 0; k < m; ++k) {
        const NodeId drv = nl.outputs()[static_cast<std::size_t>(k)].node;
        pat(drv)[static_cast<std::size_t>(k) / 64] ^= std::uint64_t{1}
                                                      << (k % 64);
    }
    for (NodeId id = static_cast<NodeId>(n); id-- > 0;) {
        if (!reachable[id]) {
            continue;
        }
        const auto& node = nl.node(id);
        if (node.kind != GateKind::And2 && node.kind != GateKind::Xor2) {
            continue;
        }
        const std::uint64_t* p = pat(id);
        bool zero = true;
        for (std::size_t w = 0; w < words; ++w) {
            zero = zero && p[w] == 0;
        }
        if (node.kind == GateKind::Xor2) {
            if (node.a != node.b) {  // equal fanins cancel mod 2
                for (const NodeId fi : {node.a, node.b}) {
                    std::uint64_t* fp = pat(fi);
                    for (std::size_t w = 0; w < words; ++w) {
                        fp[w] ^= p[w];
                    }
                    conditional[fi] |= conditional[id];
                }
            }
        } else if (!zero || conditional[id]) {
            // A fault on an AND input propagates only when the other input
            // is 1 — no constant pattern for anything feeding it (unless
            // this AND's own flips never reach an output at all).
            conditional[node.a] = 1;
            conditional[node.b] = 1;
        }
    }

    // ---- Injection-site census and distinct pattern collection -----------
    CedInfo info;
    info.original_nodes = n;
    std::set<BitVec> distinct;
    for (NodeId id = 0; id < n; ++id) {
        if (!reachable[id]) {
            continue;
        }
        const auto& node = nl.node(id);
        if (node.kind != GateKind::And2 && node.kind != GateKind::Xor2) {
            continue;
        }
        if (conditional[id]) {
            ++info.conditional_gates;
            continue;
        }
        BitVec p(pat(id), pat(id) + words);
        if (is_zero(p)) {
            ++info.benign_gates;
            continue;
        }
        info.covered_sites.push_back(id);
        distinct.insert(std::move(p));
    }

    // ---- Greedy parity-group selection ------------------------------------
    // Group 0 is the classic all-ones parity (catches every odd-weight
    // pattern); further groups are the best of `candidates_per_round`
    // pseudorandom masks per round, until no pattern has even overlap with
    // every group.  Expected rounds ~ log2(|distinct even patterns|).
    std::vector<BitVec> groups;
    BitVec all_ones(words, ~std::uint64_t{0});
    if (m % 64 != 0) {
        all_ones[words - 1] = (std::uint64_t{1} << (m % 64)) - 1;
    }
    groups.push_back(all_ones);
    std::vector<BitVec> uncovered;
    for (const auto& p : distinct) {
        if (!odd_overlap(p, all_ones)) {
            uncovered.push_back(p);
        }
    }
    verify::SweepRng rng{options.seed};
    while (!uncovered.empty()) {
        if (static_cast<int>(groups.size()) >= options.max_groups) {
            throw std::logic_error{
                "add_parity_ced: parity-group search exceeded max_groups"};
        }
        BitVec best;
        std::size_t best_score = 0;
        for (int c = 0; c < options.candidates_per_round; ++c) {
            BitVec cand(words);
            for (std::size_t w = 0; w < words; ++w) {
                cand[w] = rng() & all_ones[w];
            }
            std::size_t score = 0;
            for (const auto& p : uncovered) {
                score += odd_overlap(p, cand) ? 1 : 0;
            }
            if (score > best_score) {
                best_score = score;
                best = std::move(cand);
            }
        }
        if (best_score == 0) {
            // Astronomically unlikely (each candidate covers each pattern
            // w.p. 1/2); fall back to a singleton group on the first
            // uncovered pattern's lowest set output.
            best.assign(words, 0);
            for (int k = 0; k < m; ++k) {
                if (test_bit(uncovered.front(), k)) {
                    best[static_cast<std::size_t>(k) / 64] = std::uint64_t{1}
                                                             << (k % 64);
                    break;
                }
            }
        }
        std::vector<BitVec> still;
        for (auto& p : uncovered) {
            if (!odd_overlap(p, best)) {
                still.push_back(std::move(p));
            }
        }
        uncovered = std::move(still);
        groups.push_back(std::move(best));
    }
    // Self-check the cover before committing gates to it.
    for (const auto& p : distinct) {
        bool covered = false;
        for (const auto& g : groups) {
            covered = covered || odd_overlap(p, g);
        }
        if (!covered) {
            throw std::logic_error{"add_parity_ced: group cover incomplete"};
        }
    }

    // ---- Prediction/checker circuits (fresh gates only) -------------------
    const auto powers = power_masks(field);
    std::vector<NodeId> a_node(static_cast<std::size_t>(m));
    std::vector<NodeId> b_node(static_cast<std::size_t>(m));
    std::vector<NodeId> c_driver(static_cast<std::size_t>(m));
    for (int i = 0; i < m; ++i) {
        a_node[static_cast<std::size_t>(i)] =
            nl.inputs()[static_cast<std::size_t>(i)].node;
        b_node[static_cast<std::size_t>(i)] =
            nl.inputs()[static_cast<std::size_t>(m + i)].node;
        c_driver[static_cast<std::size_t>(i)] =
            nl.outputs()[static_cast<std::size_t>(i)].node;
    }
    std::vector<NodeId> errs;
    errs.reserve(groups.size());
    for (std::size_t t = 0; t < groups.size(); ++t) {
        const BitVec& g = groups[t];
        // q^{g}_s = parity of (x^s mod f) restricted to the group.
        std::vector<std::uint8_t> q(powers.size(), 0);
        for (std::size_t s = 0; s < powers.size(); ++s) {
            q[s] = odd_overlap(powers[s], g) ? 1 : 0;
        }
        // Predicted parity: Σ_i a_i · (Σ_j q_{i+j} b_j).
        std::vector<NodeId> terms;
        std::vector<NodeId> leaves;
        for (int i = 0; i < m; ++i) {
            leaves.clear();
            for (int j = 0; j < m; ++j) {
                if (q[static_cast<std::size_t>(i + j)] != 0) {
                    leaves.push_back(b_node[static_cast<std::size_t>(j)]);
                }
            }
            if (leaves.empty()) {
                continue;
            }
            const NodeId r = fresh_xor_tree(nl, leaves);
            terms.push_back(
                nl.make_and_fresh(a_node[static_cast<std::size_t>(i)], r));
        }
        const NodeId pred = fresh_xor_tree(nl, std::move(terms));
        // Actual parity over the group's real output drivers (duplicate
        // drivers appear as duplicate leaves and cancel, matching the
        // parity of the output *ports*).
        std::vector<NodeId> act_leaves;
        for (int k = 0; k < m; ++k) {
            if (test_bit(g, k)) {
                act_leaves.push_back(c_driver[static_cast<std::size_t>(k)]);
            }
        }
        const NodeId act = fresh_xor_tree(nl, std::move(act_leaves));
        errs.push_back(nl.make_xor_fresh(pred, act));
    }
    // Alarm = OR of the group errors: x|y = (x^y)^(x&y), fresh throughout.
    NodeId alarm = errs[0];
    for (std::size_t t = 1; t < errs.size(); ++t) {
        const NodeId x = nl.make_xor_fresh(alarm, errs[t]);
        const NodeId y = nl.make_and_fresh(alarm, errs[t]);
        alarm = nl.make_xor_fresh(x, y);
    }
    for (std::size_t t = 0; t < errs.size(); ++t) {
        nl.add_output(ced_error_output(static_cast<int>(t)), errs[t]);
    }
    nl.add_output(kCedAlarmOutput, alarm);

    info.groups = static_cast<int>(groups.size());
    info.masks.resize(groups.size());
    for (std::size_t t = 0; t < groups.size(); ++t) {
        info.masks[t].resize(static_cast<std::size_t>(m), 0);
        for (int k = 0; k < m; ++k) {
            info.masks[t][static_cast<std::size_t>(k)] =
                test_bit(groups[t], k) ? 1 : 0;
        }
    }
    info.added_gates = nl.node_count() - n;

    // Mark every appended checker gate as protected: the optimization
    // passes (src/opt) rebuild protected logic — and its whole transitive
    // fanin — verbatim, so no rewrite can merge a prediction gate with the
    // multiplier gate whose fault it exists to catch, and the error
    // patterns the parity groups were selected to cover stay valid.
    for (NodeId id = static_cast<NodeId>(n);
         id < static_cast<NodeId>(nl.node_count()); ++id) {
        const auto kind = nl.node(id).kind;
        if (kind == netlist::GateKind::And2 || kind == netlist::GateKind::Xor2) {
            nl.set_protected(id);
        }
    }
    return info;
}

}  // namespace gfr::guard
