#ifndef GFR_GUARD_STATUS_H
#define GFR_GUARD_STATUS_H

// Structured error taxonomy of the guard subsystem.
//
// The self-checking paths (ABFT region checksums, kernel self-tests) report
// detected faults as values, not exceptions: a checksum mismatch on a
// terabyte stream is an *expected* event the caller routes to re-read /
// re-encode logic, and the kernel quarantine runs inside dispatch
// initialization where an exception would tear down the process the
// degradation exists to save.  Exceptions stay what they always were here —
// programming errors (wrong span lengths, mismatched Prepared state).
//
// This header is a leaf (nothing above <string>), so every layer — the bulk
// kernels below src/field, the region engine above it, the netlist tier —
// can speak the same taxonomy.

#include <string>
#include <utility>

namespace gfr::guard {

/// What a self-check detected.  Extend at the end only: the values are
/// logged by production counters and the tests pin the names.
enum class Fault : unsigned char {
    None = 0,          ///< no fault detected
    KernelSelfTest,    ///< golden-vector self-test failed; kernel quarantined
    RegionChecksum,    ///< ABFT region fold disagrees with the running checksum
    ParityAlarm,       ///< CED parity checker raised ced_alarm
};

[[nodiscard]] constexpr const char* fault_name(Fault f) noexcept {
    switch (f) {
        case Fault::None: return "none";
        case Fault::KernelSelfTest: return "kernel-self-test";
        case Fault::RegionChecksum: return "region-checksum";
        case Fault::ParityAlarm: return "parity-alarm";
    }
    return "?";
}

/// Result of one self-check.  ok() is the hot-path query; `detail` is only
/// populated on failure (the success path allocates nothing).
struct [[nodiscard]] Status {
    Fault fault = Fault::None;
    std::string detail;  ///< human-readable failure context; empty when ok

    [[nodiscard]] bool ok() const noexcept { return fault == Fault::None; }
    explicit operator bool() const noexcept { return ok(); }

    [[nodiscard]] std::string to_string() const {
        if (ok()) {
            return "ok";
        }
        std::string out = fault_name(fault);
        if (!detail.empty()) {
            out += ": ";
            out += detail;
        }
        return out;
    }

    static Status good() noexcept { return {}; }
    static Status fail(Fault f, std::string detail) {
        return Status{f, std::move(detail)};
    }
};

}  // namespace gfr::guard

#endif  // GFR_GUARD_STATUS_H
