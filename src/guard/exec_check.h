#ifndef GFR_GUARD_EXEC_CHECK_H
#define GFR_GUARD_EXEC_CHECK_H

// Golden-tape self-tests and the quarantine ladder for the exec backends —
// the tape-execution rung of the guard discipline in kernel_check.h.
//
// Every non-scalar tape executor exec::dispatch() selects is screened ONCE,
// at first dispatch, by running synthetic golden tapes (an AND/XOR netlist
// shaped to exercise every fused instruction form, and a LUT network with
// cones of every width 0..6 including non-parity truth tables) through the
// candidate backend and comparing bit-exactly against the scalar executor at
// every block width 1..kMaxBlocks.  The backend's fused sweep oracle
// (TapeKernel::oracle) is screened on the same rung: synthetic reduction
// structures at full-row, ragged-tail and sub-vector degrees, diffed
// word-exactly against the scalar oracle with true-product, flipped-bit and
// random got-words at every width.  The scalar executor is the reference
// semantics — pinned by the exec differential tests — and is never screened.
//
// A backend that fails is QUARANTINED: the dispatch downgrades one rung
// (avx512 -> avx2 -> scalar) and the next rung is screened in turn, so a
// faulty vector backend degrades to scalar, never to wrong answers.
//
// GFR_GUARD_FAULT drills the ladder end-to-end in CI with the same spec
// grammar as the bulk kernels (fault_spec_hits): the exec tokens are
// "exec-avx2" / "exec-avx512", and the umbrella tokens ("all", "simd", "1",
// "on", "true", "yes") hit the exec rungs too.

#include "exec/run_kernels.h"
#include "guard/status.h"

#include <string>
#include <vector>

namespace gfr::guard {

/// One exec quarantine event: which backend failed screening and why.
struct TapeCheck {
    exec::Backend backend = exec::Backend::Scalar;
    bool forced = false;  ///< failure injected via the GFR_GUARD_FAULT spec
    std::string detail;   ///< first mismatch, self-test coordinates included
    [[nodiscard]] std::string to_string() const;
};

/// True when `spec` (a GFR_GUARD_FAULT value) demands a forced self-test
/// failure for `backend` — token "exec-<name>" or an umbrella token.
/// Scalar is never forced.
[[nodiscard]] bool exec_fault_forced(const char* spec,
                                     exec::Backend backend) noexcept;

/// Screen one tape executor against the scalar reference on the golden
/// tapes, all block widths.  `force_fault` flips one output bit before the
/// first comparison.  The kernel is executed directly — callers must only
/// pass kernels the running CPU supports.
[[nodiscard]] Status selftest_tape_kernel(const exec::TapeKernel& k,
                                          bool force_fault = false);

struct ExecScreenResult {
    exec::ExecDispatch dispatch;         ///< possibly downgraded selection
    std::vector<TapeCheck> quarantined;  ///< failures, in screening order
};

/// Pure screening policy: self-test `base`'s backend, downgrade past any
/// failure, screen the replacement rung too.  No global state — the unit
/// tests drive this with synthetic fault specs.
[[nodiscard]] ExecScreenResult screen_exec_dispatch(
    const exec::ExecDispatch& base, const char* fault_spec = nullptr);

/// screen_exec_dispatch + record the quarantine list for
/// exec_quarantine_report().  Called exactly once, by exec::dispatch()'s
/// one-time initializer.
[[nodiscard]] exec::ExecDispatch screen_exec_and_record(
    const exec::ExecDispatch& base, const char* fault_spec);

/// Backends quarantined by the process-wide exec dispatch screening (empty
/// in a healthy process).  Forces exec::dispatch() first, so the result is
/// complete and race-free regardless of call order.
[[nodiscard]] const std::vector<TapeCheck>& exec_quarantine_report();

}  // namespace gfr::guard

#endif  // GFR_GUARD_EXEC_CHECK_H
