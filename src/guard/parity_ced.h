#ifndef GFR_GUARD_PARITY_CED_H
#define GFR_GUARD_PARITY_CED_H

// Concurrent error detection for GF(2^m) bit-parallel multiplier netlists
// via parity prediction (after Nabipour/Reyhani-Masoleh, arXiv 2306.13347).
//
// For C = A*B mod f, any parity group M ⊆ {0..m-1} of output coefficients
// satisfies
//
//     XOR_{k in M} c_k = Σ_{i,j} q^{M}_{i+j} · a_i · b_j       over GF(2),
//
// where q^{M}_s is the parity of (x^s mod f) restricted to M — a host
// compile-time constant of the modulus.  add_parity_ced() appends, per
// group, a prediction circuit computing the right-hand side b-first
// (r_i = XOR of the selected b_j, then AND with a_i, then an XOR tree), an
// "actual" tree XORing the group's real output drivers, their difference
// as output ced_err<t>, and the OR of all group errors as output
// ced_alarm.  On a fault-free netlist every ced_err is identically 0.
//
// Detection guarantee.  A single fault at gate g corrupts the outputs by a
// fixed pattern E(g) whenever the fault's local error is excited, PROVIDED
// every path from g to the outputs is XOR-only (true for every AND output
// and everything downstream, since all generators build a single AND
// layer; gates feeding an AND input — the Paar a-sums, the Reyhani-Hasan
// w-network, Karatsuba operand sums — propagate input-dependently and sit
// outside the static guarantee).  The pass computes E(g) for every
// constant-pattern gate by a reverse-topological XOR-path parity sweep and
// then *selects* the parity groups so that every nonzero E(g) has odd
// overlap with at least one group: the classic all-ones parity first
// (which single-parity CED uses and which misses even-weight patterns),
// then greedily-chosen pseudorandom groups until no pattern is left
// uncovered.  The covered sites are reported in CedInfo; the
// fault-injection campaign (verify/fault_campaign.h) injects exactly
// there and the tests hold the detection rate to 100%.
//
// Structural independence: every gate this pass adds is created with the
// fresh (non-interned) netlist API, so no checker gate can be merged with
// a multiplier gate — a merged gate's fault would corrupt prediction and
// function identically and cancel out of the comparison.

#include "field/gf2m.h"
#include "netlist/netlist.h"

#include <cstdint>
#include <string>
#include <vector>

namespace gfr::guard {

/// Output name of the 1-bit alarm (OR of all group errors).
inline constexpr const char* kCedAlarmOutput = "ced_alarm";

/// Output name of parity group t's error bit.
[[nodiscard]] std::string ced_error_output(int t);

struct CedOptions {
    /// Hard cap on parity groups (greedy coverage needs ~log2 of the
    /// distinct error patterns; the cap only guards against regressions).
    int max_groups = 48;
    /// Seed of the deterministic group search.
    std::uint64_t seed = 0xCED5EEDULL;
    /// Pseudorandom candidate groups scored per greedy round.
    int candidates_per_round = 32;
};

struct CedInfo {
    int groups = 0;  ///< parity groups added (>= 1; group 0 is all-ones)
    /// Group membership masks over the m outputs: masks[t][k] != 0 iff
    /// output c_k belongs to group t.
    std::vector<std::vector<std::uint8_t>> masks;
    /// Gates of the ORIGINAL netlist with a constant nonzero error pattern;
    /// every one is covered by the selected groups (the 100%-detection
    /// injection sites).
    std::vector<netlist::NodeId> covered_sites;
    std::size_t benign_gates = 0;       ///< constant pattern, identically zero
    std::size_t conditional_gates = 0;  ///< pattern input-dependent (pre-AND)
    std::size_t original_nodes = 0;     ///< node count before augmentation
    std::size_t added_gates = 0;        ///< checker gates appended
    [[nodiscard]] std::string to_string() const;
};

/// Augment a multiplier netlist (inputs a0..a(m-1), b0..b(m-1), outputs
/// c0..c(m-1) in order, as built by mult::build_multiplier for `field`)
/// with parity-predicted CED outputs.  The function outputs keep their
/// position; ced_err0..ced_err(groups-1) and ced_alarm are appended after
/// them.  Throws std::invalid_argument when the interface does not match
/// the field.
CedInfo add_parity_ced(netlist::Netlist& nl, const field::Field& field,
                       const CedOptions& options = {});

}  // namespace gfr::guard

#endif  // GFR_GUARD_PARITY_CED_H
