#include "guard/exec_check.h"

#include "guard/kernel_check.h"
#include "netlist/netlist.h"

#include <array>
#include <cstdio>
#include <string>
#include <vector>

namespace gfr::guard {

namespace {

/// splitmix64 — deterministic test-vector generation, local on purpose: the
/// guard tier must not share PRNG code with the tiers it screens.
struct TapeTestRng {
    std::uint64_t state;
    std::uint64_t operator()() noexcept {
        std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        return z ^ (z >> 31);
    }
};

/// Golden AND/XOR netlist: shaped so compilation produces every tape
/// instruction form — a lone And2 and Xor2, a fanout-1 XOR chain (fuses to
/// XorN), a partial-product column (fuses to AndXorN with both pair and
/// single operands), and a shared subterm consumed twice (fanout > 1, so
/// fusion must stop there and the slot recycler is exercised).
exec::Program golden_netlist_tape() {
    namespace nl = gfr::netlist;
    nl::Netlist n;
    std::array<nl::NodeId, 16> x{};
    for (int i = 0; i < 16; ++i) {
        x[i] = n.add_input("x" + std::to_string(i));
    }
    // o_and / o_xor: the binary fast cases.
    n.add_output("o_and", n.make_and(x[0], x[1]));
    n.add_output("o_xor", n.make_xor(x[2], x[3]));
    // o_parity: 8-leaf XOR tree, interior fanout 1 -> one XorN.
    std::array<nl::NodeId, 8> leaves{};
    for (int i = 0; i < 8; ++i) {
        leaves[i] = x[i];
    }
    n.add_output("o_parity",
                 n.make_xor_tree(std::span<const nl::NodeId>{leaves},
                                 nl::TreeShape::Balanced));
    // o_col: XOR of four single-use products plus two singles -> AndXorN
    // with aux = 4 pairs and two trailing single operands.
    std::array<nl::NodeId, 6> col{};
    for (int i = 0; i < 4; ++i) {
        col[i] = n.make_and(x[2 * i + 4], x[2 * i + 5]);
    }
    col[4] = x[14];
    col[5] = x[15];
    n.add_output("o_col", n.make_xor_tree(std::span<const nl::NodeId>{col},
                                          nl::TreeShape::Chain));
    // o_shared / o_shared2: one product consumed by two outputs, so the
    // fused accumulates must reference a materialised shared slot.
    const nl::NodeId shared = n.make_and(x[6], x[9]);
    n.add_output("o_shared", n.make_xor(shared, x[0]));
    n.add_output("o_shared2", n.make_xor(shared, x[7]));
    return exec::Program::compile(n);
}

/// Golden LUT network: cones of every width 0..6, including non-parity /
/// non-AND truth tables (majority, a raw random table) so the Shannon mux
/// fold runs its full depth, plus a LUT-feeds-LUT chain and a constant.
exec::Program golden_lut_tape() {
    namespace fp = gfr::fpga;
    fp::LutNetwork net;
    for (int i = 0; i < 8; ++i) {
        net.input_names.push_back("i" + std::to_string(i));
    }
    const auto lut_ref = [&](int idx) {
        return static_cast<std::int32_t>(net.input_count() + idx);
    };
    // k=0 constant one.
    net.luts.push_back({{}, 1});
    // k=1 inverter of input 0.
    net.luts.push_back({{0}, 0b01});
    // k=2 NAND.
    net.luts.push_back({{1, 2}, 0b0111});
    // k=3 majority (non-parity cone).
    net.luts.push_back({{0, 1, 2}, 0b11101000});
    // k=4 raw table.
    net.luts.push_back({{3, 4, 5, 6}, 0x6A3C});
    // k=5 raw table.
    net.luts.push_back({{0, 2, 4, 6, 7}, 0x9D2B47F10C83E56AULL & 0xFFFFFFFFULL});
    // k=6 raw table over inputs and earlier LUTs (chained cone).
    net.luts.push_back({{0, 1, lut_ref(1), lut_ref(2), lut_ref(3), 7},
                        0x9D2B47F10C83E56AULL});
    for (int i = 0; i < static_cast<int>(net.luts.size()); ++i) {
        net.outputs.emplace_back("o" + std::to_string(i), lut_ref(i));
    }
    return exec::Program::compile(net);
}

/// Run `prog` through `k` at every block width and diff against the scalar
/// executor.  `tag` labels the golden tape in failure details.
Status diff_tape(const exec::TapeKernel& k, const exec::Program& prog,
                 const char* tag, TapeTestRng& rng, bool& fault_pending) {
    const char* name = exec::backend_name(k.backend);
    const exec::TapeView tape = prog.tape_view();
    const auto n_in = static_cast<std::size_t>(prog.input_count());
    const auto n_out = static_cast<std::size_t>(prog.output_count());
    exec::Program::Scratch ref_scratch;
    exec::Program::Scratch got_scratch;
    std::vector<std::uint64_t> in;
    std::vector<std::uint64_t> want;
    std::vector<std::uint64_t> got;
    for (int blocks = 1; blocks <= exec::Program::kMaxBlocks; ++blocks) {
        in.resize(n_in * blocks);
        want.assign(n_out * blocks, 0);
        got.assign(n_out * blocks, 0);
        for (auto& w : in) {
            w = rng();
        }
        const auto lanes = static_cast<std::size_t>(k.word_lanes);
        const std::size_t stride =
            (static_cast<std::size_t>(blocks) + lanes - 1) / lanes * lanes;
        ref_scratch.ensure(static_cast<std::size_t>(blocks) * tape.slot_count);
        got_scratch.ensure(stride * tape.slot_count);
        exec::kTapeScalar.run(tape, in.data(), want.data(), ref_scratch.data(),
                              blocks);
        k.run(tape, in.data(), got.data(), got_scratch.data(), blocks);
        if (fault_pending) {
            got[0] ^= 1;  // forced fault: corrupt one output lane
            fault_pending = false;
        }
        for (std::size_t i = 0; i < n_out * blocks; ++i) {
            if (got[i] != want[i]) {
                char buf[160];
                std::snprintf(buf, sizeof buf,
                              "%s tape mismatch on %s at blocks=%d block=%zu "
                              "output=%zu: got 0x%llx want 0x%llx",
                              name, tag, blocks, i / n_out, i % n_out,
                              static_cast<unsigned long long>(got[i]),
                              static_cast<unsigned long long>(want[i]));
                return Status::fail(Fault::KernelSelfTest, buf);
            }
        }
    }
    return Status::good();
}

/// Local lane-product reference for the oracle screen: schoolbook partials
/// plus the view's reduction columns, written independently here on
/// purpose — the guard tier must not certify the sweep oracle against the
/// very code it screens.
void screen_lane_products(const exec::SweepOracleView& ov,
                          const std::uint64_t* a, const std::uint64_t* b,
                          std::uint64_t* want) {
    const auto m = static_cast<std::size_t>(ov.m);
    std::vector<std::uint64_t> d(2 * m - 1, 0);
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < m; ++j) {
            d[i + j] ^= a[i] & b[j];
        }
    }
    for (std::size_t k = 0; k < m; ++k) {
        std::uint64_t c = d[k];
        for (std::int32_t t = ov.red_offsets[k]; t < ov.red_offsets[k + 1];
             ++t) {
            c ^= d[m + static_cast<std::size_t>(ov.red_indices[t])];
        }
        want[k] = c;
    }
}

/// Screen the candidate's fused sweep oracle against the scalar rung on a
/// synthetic reduction structure at degree `m` (any column support
/// exercises the math — no field needed), every block width: the true
/// product must report all-clean, one flipped got-bit must flag exactly its
/// block, and on fully random got-words the diff words must match the
/// scalar rung bit-exactly.
Status diff_oracle(const exec::TapeKernel& k, int m, TapeTestRng& rng,
                   bool& fault_pending) {
    const char* name = exec::backend_name(k.backend);
    std::vector<std::int32_t> red_indices;
    std::vector<std::int32_t> red_offsets{0};
    for (int c = 0; c < m; ++c) {
        const int count = static_cast<int>(rng() % 4);
        for (int t = 0; t < count; ++t) {
            red_indices.push_back(
                static_cast<std::int32_t>(rng() % static_cast<unsigned>(m - 1)));
        }
        red_offsets.push_back(static_cast<std::int32_t>(red_indices.size()));
    }
    const exec::SweepOracleView ov{red_indices.data(), red_offsets.data(), m};

    const auto mz = static_cast<std::size_t>(m);
    std::vector<std::uint64_t> in;
    std::vector<std::uint64_t> got;
    std::vector<std::uint64_t> dwork(8 * mz + 64);
    std::vector<std::uint64_t> diff_got(exec::Program::kMaxBlocks);
    std::vector<std::uint64_t> diff_want(exec::Program::kMaxBlocks);
    for (int blocks = 1; blocks <= exec::Program::kMaxBlocks; ++blocks) {
        in.resize(2 * mz * blocks);
        got.resize(mz * blocks);
        for (auto& w : in) {
            w = rng();
        }
        for (int b = 0; b < blocks; ++b) {
            screen_lane_products(ov, in.data() + 2 * mz * b,
                                 in.data() + 2 * mz * b + mz,
                                 got.data() + mz * b);
        }
        const int flip_block = static_cast<int>(rng() % static_cast<unsigned>(blocks));
        for (int phase = 0; phase < 3; ++phase) {
            if (phase == 1) {
                got[mz * flip_block + rng() % mz] ^= std::uint64_t{1}
                                                    << (rng() % 64);
            } else if (phase == 2) {
                for (auto& w : got) {
                    w = rng();
                }
            }
            k.oracle(ov, in.data(), got.data(), diff_got.data(), dwork.data(),
                     blocks);
            if (fault_pending) {
                diff_got[0] ^= 1;  // forced fault: corrupt one diff word
                fault_pending = false;
            }
            exec::kTapeScalar.oracle(ov, in.data(), got.data(),
                                     diff_want.data(), dwork.data(), blocks);
            for (int b = 0; b < blocks; ++b) {
                if (diff_got[b] != diff_want[b]) {
                    char buf[160];
                    std::snprintf(
                        buf, sizeof buf,
                        "%s sweep-oracle mismatch at m=%d blocks=%d block=%d "
                        "phase=%d: got 0x%llx want 0x%llx",
                        name, m, blocks, b, phase,
                        static_cast<unsigned long long>(diff_got[b]),
                        static_cast<unsigned long long>(diff_want[b]));
                    return Status::fail(Fault::KernelSelfTest, buf);
                }
            }
            // Cross-check the scalar rung's own semantics while we are
            // here: the true product is all-clean and the flipped bit
            // flags exactly its block.
            if (phase == 0 || phase == 1) {
                for (int b = 0; b < blocks; ++b) {
                    const bool want_flag = phase == 1 && b == flip_block;
                    if ((diff_want[b] != 0) != want_flag) {
                        char buf[160];
                        std::snprintf(buf, sizeof buf,
                                      "scalar sweep-oracle semantics broken at "
                                      "m=%d blocks=%d block=%d phase=%d",
                                      m, blocks, b, phase);
                        return Status::fail(Fault::KernelSelfTest, buf);
                    }
                }
            }
        }
    }
    return Status::good();
}

}  // namespace

std::string TapeCheck::to_string() const {
    std::string s = "quarantined exec-";
    s += exec::backend_name(backend);
    s += forced ? " (forced by " : " (";
    s += forced ? std::string{kGuardFaultEnv} + ")" : std::string{"self-test)"};
    s += ": ";
    s += detail;
    return s;
}

bool exec_fault_forced(const char* spec, exec::Backend backend) noexcept {
    if (backend == exec::Backend::Scalar) {
        return false;
    }
    char name[32];
    std::snprintf(name, sizeof name, "exec-%s", exec::backend_name(backend));
    return fault_spec_hits(spec, name);
}

Status selftest_tape_kernel(const exec::TapeKernel& k, bool force_fault) {
    if (k.run == nullptr || k.oracle == nullptr) {
        return Status::fail(Fault::KernelSelfTest,
                            std::string{exec::backend_name(k.backend)} +
                                " tape kernel: null entry point");
    }
    TapeTestRng rng{0x7A9EC0DEULL ^ static_cast<std::uint64_t>(k.backend)};
    bool fault_pending = force_fault;
    const exec::Program netlist_tape = golden_netlist_tape();
    if (Status s = diff_tape(k, netlist_tape, "netlist", rng, fault_pending);
        !s.ok()) {
        return s;
    }
    const exec::Program lut_tape = golden_lut_tape();
    if (Status s = diff_tape(k, lut_tape, "lut", rng, fault_pending);
        !s.ok()) {
        return s;
    }
    // The fused sweep oracle rides the same rung: screen it at a degree
    // with full vector rows (8), a ragged tail (13), and a sub-vector
    // width (5), so no masked path ships unchecked.
    for (const int m : {8, 13, 5}) {
        if (Status s = diff_oracle(k, m, rng, fault_pending); !s.ok()) {
            return s;
        }
    }
    return Status::good();
}

ExecScreenResult screen_exec_dispatch(const exec::ExecDispatch& base,
                                      const char* fault_spec) {
    ExecScreenResult r;
    r.dispatch = base;
    // Screen the selected backend; on failure fall to the next rung the CPU
    // supports and screen that too.  Scalar terminates the ladder
    // unscreened — it is the reference semantics.
    const exec::TapeKernel* k = base.kernel;
    while (k != nullptr && k->backend != exec::Backend::Scalar) {
        const bool forced = exec_fault_forced(fault_spec, k->backend);
        const Status s = selftest_tape_kernel(*k, forced);
        if (s.ok()) {
            break;
        }
        r.quarantined.push_back(TapeCheck{k->backend, forced, s.detail});
        // Next rung of avx512 > avx2 > scalar that is compiled and
        // CPU-supported (the same order make_exec_dispatch prefers).
        const exec::TapeKernel* next = nullptr;
        constexpr exec::Backend kLadder[] = {exec::Backend::Avx512,
                                             exec::Backend::Avx2};
        bool below_failed = false;
        for (const exec::Backend backend : kLadder) {
            if (backend == k->backend) {
                below_failed = true;
                continue;
            }
            if (!below_failed) {
                continue;
            }
            if (const auto* cand = exec::tape_kernel(backend);
                cand != nullptr && exec::backend_supported(backend, base.cpu)) {
                next = cand;
                break;
            }
        }
        k = (next != nullptr) ? next : &exec::kTapeScalar;
    }
    r.dispatch.kernel = k;
    return r;
}

namespace {
// Written once, inside exec::dispatch()'s magic-static initializer (which
// serializes concurrent first calls); read-only afterwards.
std::vector<TapeCheck>& exec_quarantine_store() {
    static std::vector<TapeCheck> store;
    return store;
}
}  // namespace

exec::ExecDispatch screen_exec_and_record(const exec::ExecDispatch& base,
                                          const char* fault_spec) {
    ExecScreenResult r = screen_exec_dispatch(base, fault_spec);
    exec_quarantine_store() = std::move(r.quarantined);
    return r.dispatch;
}

const std::vector<TapeCheck>& exec_quarantine_report() {
    (void)exec::dispatch();  // force the one-time screening
    return exec_quarantine_store();
}

}  // namespace gfr::guard
