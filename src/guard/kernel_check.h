#ifndef GFR_GUARD_KERNEL_CHECK_H
#define GFR_GUARD_KERNEL_CHECK_H

// Golden-vector kernel self-tests and the quarantine ladder.
//
// Every non-scalar kernel the runtime dispatch selects is screened ONCE, at
// first dispatch, against an implementation-independent reference:
//
//   - byte kernels against a direct two-nibble-table evaluation (the
//     definition, written out here rather than calling kByteScalar, so the
//     reference shares no code with any kernel under test), over
//     deterministic pseudo-random tables and operands, lengths straddling
//     every vector width / tail / alignment case, plus in-place calls;
//   - the wide carry-less word kernel against a Russian-peasant shift-XOR
//     multiplier over GF(2^64)/(y^64 + y^4 + y^3 + y + 1), with
//     WideParams.folds pinned to kMaxWideFolds so the branch-free vector
//     path (not the scalar residual fallback, which shares its translation
//     unit with the kernel) produces every checked value.
//
// A kernel that fails is QUARANTINED: the dispatch is downgraded one rung
// (avx2 -> ssse3 -> scalar for bytes; vpclmul -> window-table walk for
// words) and the next rung is screened in turn.  The scalar kernels are the
// reference semantics and are never screened.  Since every downstream path
// (RegionEngine, FieldOps region routing) takes its kernels from
// bulk::dispatch(), a quarantined kernel can never touch user data, and the
// scalar fallback is bit-identical by the engine's differential tests.
//
// GFR_GUARD_FAULT deliberately fails self-tests (a bit flipped in the
// kernel output before comparison) to exercise the quarantine path
// end-to-end in CI: set it to a kernel name ("ssse3", "avx2", "vpclmul"),
// a comma-separated list of names, or "all"/"simd"/"1" for every non-scalar
// kernel.

#include "bulk/kernels.h"
#include "guard/status.h"

#include <string>
#include <vector>

namespace gfr::guard {

/// Environment variable holding the forced-fault spec (read once by
/// bulk::dispatch(); screen_dispatch takes the value as a parameter so
/// tests can drive it without mutating the environment).
inline constexpr const char* kGuardFaultEnv = "GFR_GUARD_FAULT";

/// One quarantine event: which kernel failed screening and why.
struct KernelCheck {
    bulk::KernelKind kind = bulk::KernelKind::Scalar;
    bool forced = false;  ///< failure injected via the GFR_GUARD_FAULT spec
    std::string detail;   ///< first mismatch, self-test coordinates included
    [[nodiscard]] std::string to_string() const;
};

/// True when `spec` (a GFR_GUARD_FAULT value; nullptr/empty mean no forcing)
/// names `kernel_name` — directly, or via the "all"/"1"/"simd"/"on"/"true"/
/// "yes" umbrella tokens ("0"/"off"/"false"/"no" tokens are skipped).  The
/// shared token parser behind fault_forced and the exec-tier
/// exec_fault_forced, so one spec grammar drives every quarantine drill.
[[nodiscard]] bool fault_spec_hits(const char* spec,
                                   const char* kernel_name) noexcept;

/// True when `spec` (a GFR_GUARD_FAULT value; nullptr/empty/"0"/"off" mean
/// no forcing) demands a forced self-test failure for `kind`.  Scalar is
/// never forced — it is the reference, not a screened kernel.
[[nodiscard]] bool fault_forced(const char* spec, bulk::KernelKind kind) noexcept;

/// Screen one byte kernel against the direct nibble-table reference.
/// `force_fault` flips one output bit before the first comparison.
[[nodiscard]] Status selftest_byte_kernel(const bulk::ByteKernel& k,
                                          bool force_fault = false);

/// Screen one word kernel (mul / addmul / mul_elementwise) against the
/// peasant-multiply reference.  `force_fault` as above.
[[nodiscard]] Status selftest_word_kernel(const bulk::WordKernel& k,
                                          bool force_fault = false);

struct ScreenResult {
    bulk::Dispatch dispatch;               ///< possibly downgraded selection
    std::vector<KernelCheck> quarantined;  ///< failures, in screening order
};

/// Pure screening policy: self-test `base`'s non-scalar kernels, downgrade
/// past any failure, screen the replacement rung too.  No global state —
/// this is the function the unit tests drive with synthetic fault specs.
[[nodiscard]] ScreenResult screen_dispatch(const bulk::Dispatch& base,
                                           const char* fault_spec = nullptr);

/// screen_dispatch + record the quarantine list for quarantine_report().
/// Called exactly once, by bulk::dispatch()'s one-time initializer.
[[nodiscard]] bulk::Dispatch screen_and_record(const bulk::Dispatch& base,
                                               const char* fault_spec);

/// Kernels quarantined by the process-wide dispatch screening (empty in a
/// healthy process).  Forces bulk::dispatch() first, so the result is
/// complete and race-free regardless of call order.
[[nodiscard]] const std::vector<KernelCheck>& quarantine_report();

}  // namespace gfr::guard

#endif  // GFR_GUARD_KERNEL_CHECK_H
