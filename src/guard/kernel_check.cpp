#include "guard/kernel_check.h"

#include <array>
#include <cstdio>
#include <vector>

namespace gfr::guard {

namespace {

/// splitmix64 — deterministic vector generation for the self-tests.  Local
/// on purpose: the guard tier must not share PRNG code with the tiers it
/// screens.
struct SelfTestRng {
    std::uint64_t state;
    std::uint64_t operator()() noexcept {
        std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        return z ^ (z >> 31);
    }
};

bool token_matches(const char* begin, const char* end, const char* word) noexcept {
    for (; begin != end && *word != '\0'; ++begin, ++word) {
        const char c = (*begin >= 'A' && *begin <= 'Z')
                           ? static_cast<char>(*begin - 'A' + 'a')
                           : *begin;
        if (c != *word) {
            return false;
        }
    }
    return begin == end && *word == '\0';
}

std::string hex(std::uint64_t v) {
    char buf[19];
    std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(v));
    return buf;
}

/// Lengths straddling every vector width (16/32 bytes, 4 u64 lanes), their
/// tails, and the empty case.
constexpr std::array<std::size_t, 14> kByteLengths = {
    0, 1, 2, 3, 15, 16, 17, 31, 32, 33, 63, 64, 65, 257};
constexpr std::array<std::size_t, 12> kWordLengths = {0, 1, 2,  3,  4,  5,
                                                      7, 8, 9,  16, 33, 100};

/// GF(2^64) with f = y^64 + y^4 + y^3 + y + 1 — the word self-test field.
constexpr std::uint64_t kWordTails = 0x1B;

/// Software GF2P8AFFINEQB byte transform (parity loops, no SIMD): the
/// independent reference the GFNI kernel's tables are derived from in its
/// self-test.  Output bit i = parity(matrix byte 7-i AND input).
std::uint8_t soft_affine(std::uint64_t matrix, std::uint8_t x) noexcept {
    std::uint8_t r = 0;
    for (int i = 0; i < 8; ++i) {
        const auto row = static_cast<std::uint8_t>(matrix >> ((7 - i) * 8));
        const unsigned masked = static_cast<unsigned>(row & x);
        unsigned parity = masked;
        parity ^= parity >> 4;
        parity ^= parity >> 2;
        parity ^= parity >> 1;
        r = static_cast<std::uint8_t>(r | ((parity & 1U) << i));
    }
    return r;
}

/// Russian-peasant shift-XOR multiply mod f: bitwise, no CLMUL, no folds —
/// structurally unrelated to the kernel under test.
std::uint64_t peasant_mul(std::uint64_t a, std::uint64_t b) noexcept {
    std::uint64_t r = 0;
    while (b != 0) {
        if (b & 1U) {
            r ^= a;
        }
        b >>= 1;
        const bool overflow = (a >> 63) != 0;
        a <<= 1;
        if (overflow) {
            a ^= kWordTails;
        }
    }
    return r;
}

}  // namespace

std::string KernelCheck::to_string() const {
    std::string s = "quarantined ";
    s += bulk::kernel_name(kind);
    s += forced ? " (forced by " : " (";
    s += forced ? std::string{kGuardFaultEnv} + ")" : std::string{"self-test)"};
    s += ": ";
    s += detail;
    return s;
}

bool fault_spec_hits(const char* spec, const char* kernel_name) noexcept {
    if (spec == nullptr || *spec == '\0') {
        return false;
    }
    const char* p = spec;
    while (*p != '\0') {
        const char* start = p;
        while (*p != '\0' && *p != ',') {
            ++p;
        }
        const char* stop = p;
        if (*p == ',') {
            ++p;
        }
        if (token_matches(start, stop, "0") || token_matches(start, stop, "off") ||
            token_matches(start, stop, "false") ||
            token_matches(start, stop, "no")) {
            continue;
        }
        if (token_matches(start, stop, "all") || token_matches(start, stop, "1") ||
            token_matches(start, stop, "simd") ||
            token_matches(start, stop, "on") ||
            token_matches(start, stop, "true") ||
            token_matches(start, stop, "yes") ||
            token_matches(start, stop, kernel_name)) {
            return true;
        }
    }
    return false;
}

bool fault_forced(const char* spec, bulk::KernelKind kind) noexcept {
    if (kind == bulk::KernelKind::Scalar) {
        return false;
    }
    return fault_spec_hits(spec, bulk::kernel_name(kind));
}

Status selftest_byte_kernel(const bulk::ByteKernel& k, bool force_fault) {
    const char* name = bulk::kernel_name(k.kind);
    if (k.mul == nullptr || k.addmul == nullptr) {
        return Status::fail(Fault::KernelSelfTest,
                            std::string{name} + " byte kernel: null entry point");
    }
    SelfTestRng rng{0xB17EC0DEULL ^ static_cast<std::uint64_t>(k.kind)};
    // Tables need not be field products: the shuffle kernels implement the
    // pure two-lookup-XOR semantics for ANY tables, so random ones (with the
    // structural zero at index 0 real tables carry) test exactly that.  The
    // GFNI kernel can only represent GF(2)-linear maps, so for it the tables
    // are instead *derived* from a random bit matrix via the independent
    // software affine transform above — by linearity the same two-lookup
    // reference then checks the vector path against that emulation.
    bulk::NibbleTables t{};
    if (k.kind == bulk::KernelKind::Gfni) {
        t.matrix = rng();
        for (int v = 0; v < 16; ++v) {
            t.lo[v] = soft_affine(t.matrix, static_cast<std::uint8_t>(v));
            t.hi[v] = soft_affine(t.matrix, static_cast<std::uint8_t>(v << 4));
        }
    } else {
        for (int v = 1; v < 16; ++v) {
            t.lo[v] = static_cast<std::uint8_t>(rng());
            t.hi[v] = static_cast<std::uint8_t>(rng());
        }
    }
    const auto ref = [&t](std::uint8_t s) {
        return static_cast<std::uint8_t>(t.lo[s & 0xF] ^ t.hi[s >> 4]);
    };
    constexpr std::size_t kMax = 257;
    // One leading pad byte so every length also runs at an odd address —
    // the kernels promise alignment-free operation.
    std::vector<std::uint8_t> src(kMax + 1), dst(kMax + 1), expect(kMax + 1);
    bool faulted = !force_fault;
    for (const std::size_t n : kByteLengths) {
        for (const std::size_t off : {std::size_t{0}, std::size_t{1}}) {
            for (std::size_t i = 0; i < n; ++i) {
                src[off + i] = static_cast<std::uint8_t>(rng());
                dst[off + i] = static_cast<std::uint8_t>(rng());
            }
            // mul
            for (std::size_t i = 0; i < n; ++i) {
                expect[i] = ref(src[off + i]);
            }
            k.mul(t, src.data() + off, dst.data() + off, n);
            if (!faulted && n != 0) {
                dst[off] ^= 1;  // forced fault: corrupt one output lane
                faulted = true;
            }
            for (std::size_t i = 0; i < n; ++i) {
                if (dst[off + i] != expect[i]) {
                    return Status::fail(
                        Fault::KernelSelfTest,
                        std::string{name} + " byte mul mismatch at n=" +
                            std::to_string(n) + " off=" + std::to_string(off) +
                            " i=" + std::to_string(i) + ": got " +
                            hex(dst[off + i]) + " want " + hex(expect[i]));
                }
            }
            // addmul accumulates into prior dst contents
            for (std::size_t i = 0; i < n; ++i) {
                expect[i] = static_cast<std::uint8_t>(dst[off + i] ^
                                                      ref(src[off + i]));
            }
            k.addmul(t, src.data() + off, dst.data() + off, n);
            for (std::size_t i = 0; i < n; ++i) {
                if (dst[off + i] != expect[i]) {
                    return Status::fail(
                        Fault::KernelSelfTest,
                        std::string{name} + " byte addmul mismatch at n=" +
                            std::to_string(n) + " off=" + std::to_string(off) +
                            " i=" + std::to_string(i) + ": got " +
                            hex(dst[off + i]) + " want " + hex(expect[i]));
                }
            }
            // in-place mul (dst == src is inside the aliasing contract)
            for (std::size_t i = 0; i < n; ++i) {
                expect[i] = ref(src[off + i]);
            }
            k.mul(t, src.data() + off, src.data() + off, n);
            for (std::size_t i = 0; i < n; ++i) {
                if (src[off + i] != expect[i]) {
                    return Status::fail(
                        Fault::KernelSelfTest,
                        std::string{name} + " byte in-place mul mismatch at n=" +
                            std::to_string(n) + " off=" + std::to_string(off) +
                            " i=" + std::to_string(i) + ": got " +
                            hex(src[off + i]) + " want " + hex(expect[i]));
                }
            }
        }
    }
    return Status::good();
}

Status selftest_word_kernel(const bulk::WordKernel& k, bool force_fault) {
    const char* name = bulk::kernel_name(k.kind);
    if (k.mul == nullptr || k.addmul == nullptr || k.mul_elementwise == nullptr) {
        return Status::fail(Fault::KernelSelfTest,
                            std::string{name} + " word kernel: null entry point");
    }
    SelfTestRng rng{0x51DEC4A5ULL ^ static_cast<std::uint64_t>(k.kind)};
    // folds pinned at the eligibility bound: extra fold iterations are
    // no-ops, and with elem_mask all-ones the residual scalar fallback
    // (which shares a TU with the kernel) can never fire — every compared
    // value comes off the vector path.
    bulk::WideParams p{};
    p.tails_mask = kWordTails;
    p.elem_mask = ~std::uint64_t{0};
    p.m = 64;
    p.folds = bulk::kMaxWideFolds;
    constexpr std::size_t kMax = 100;
    std::vector<std::uint64_t> a(kMax), b(kMax), dst(kMax), expect(kMax);
    bool faulted = !force_fault;
    for (const std::size_t n : kWordLengths) {
        p.c = rng();
        for (std::size_t i = 0; i < n; ++i) {
            a[i] = rng();
            b[i] = rng();
            dst[i] = rng();
        }
        // const-mul
        for (std::size_t i = 0; i < n; ++i) {
            expect[i] = peasant_mul(p.c, a[i]);
        }
        k.mul(p, a.data(), dst.data(), n);
        if (!faulted && n != 0) {
            dst[0] ^= 1;
            faulted = true;
        }
        for (std::size_t i = 0; i < n; ++i) {
            if (dst[i] != expect[i]) {
                return Status::fail(
                    Fault::KernelSelfTest,
                    std::string{name} + " word mul mismatch at n=" +
                        std::to_string(n) + " i=" + std::to_string(i) +
                        ": got " + hex(dst[i]) + " want " + hex(expect[i]));
            }
        }
        // addmul accumulates
        for (std::size_t i = 0; i < n; ++i) {
            expect[i] = dst[i] ^ peasant_mul(p.c, a[i]);
        }
        k.addmul(p, a.data(), dst.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
            if (dst[i] != expect[i]) {
                return Status::fail(
                    Fault::KernelSelfTest,
                    std::string{name} + " word addmul mismatch at n=" +
                        std::to_string(n) + " i=" + std::to_string(i) +
                        ": got " + hex(dst[i]) + " want " + hex(expect[i]));
            }
        }
        // elementwise, including in-place (dst == a)
        for (std::size_t i = 0; i < n; ++i) {
            expect[i] = peasant_mul(a[i], b[i]);
        }
        k.mul_elementwise(p, a.data(), b.data(), dst.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
            if (dst[i] != expect[i]) {
                return Status::fail(
                    Fault::KernelSelfTest,
                    std::string{name} + " word elementwise mismatch at n=" +
                        std::to_string(n) + " i=" + std::to_string(i) +
                        ": got " + hex(dst[i]) + " want " + hex(expect[i]));
            }
        }
        k.mul_elementwise(p, a.data(), b.data(), a.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
            if (a[i] != expect[i]) {
                return Status::fail(
                    Fault::KernelSelfTest,
                    std::string{name} + " word in-place elementwise mismatch at n=" +
                        std::to_string(n) + " i=" + std::to_string(i) +
                        ": got " + hex(a[i]) + " want " + hex(expect[i]));
            }
        }
    }
    return Status::good();
}

ScreenResult screen_dispatch(const bulk::Dispatch& base, const char* fault_spec) {
    ScreenResult r;
    r.dispatch = base;
    // Byte ladder: screen the selected kernel; on failure fall to the next
    // rung the CPU supports and screen that too.  Scalar terminates the
    // ladder unscreened — it is the reference semantics.
    const bulk::ByteKernel* byte = base.byte;
    while (byte != nullptr && byte->kind != bulk::KernelKind::Scalar) {
        const bool forced = fault_forced(fault_spec, byte->kind);
        const Status s = selftest_byte_kernel(*byte, forced);
        if (s.ok()) {
            break;
        }
        r.quarantined.push_back(KernelCheck{byte->kind, forced, s.detail});
        // Next rung of gfni > avx2 > ssse3 > scalar that is compiled and
        // CPU-supported (the same order make_dispatch prefers).
        const bulk::ByteKernel* next = nullptr;
        constexpr bulk::KernelKind kByteLadder[] = {bulk::KernelKind::Gfni,
                                                    bulk::KernelKind::Avx2,
                                                    bulk::KernelKind::Ssse3};
        bool below_failed = false;
        for (const bulk::KernelKind kind : kByteLadder) {
            if (kind == byte->kind) {
                below_failed = true;
                continue;
            }
            if (!below_failed) {
                continue;
            }
            if (const auto* k = bulk::byte_kernel(kind);
                k != nullptr && bulk::kernel_supported(kind, base.cpu)) {
                next = k;
                break;
            }
        }
        byte = (next != nullptr) ? next : &bulk::kByteScalar;
    }
    r.dispatch.byte = byte;
    // Word ladder has one rung: vpclmul, whose fallback is the always-on
    // window-table walk (word == nullptr).
    if (base.word != nullptr) {
        const bool forced = fault_forced(fault_spec, base.word->kind);
        const Status s = selftest_word_kernel(*base.word, forced);
        if (!s.ok()) {
            r.quarantined.push_back(KernelCheck{base.word->kind, forced, s.detail});
            r.dispatch.word = nullptr;
        }
    }
    return r;
}

namespace {
// Written once, inside bulk::dispatch()'s magic-static initializer (which
// serializes concurrent first calls); read-only afterwards.
std::vector<KernelCheck>& quarantine_store() {
    static std::vector<KernelCheck> store;
    return store;
}
}  // namespace

bulk::Dispatch screen_and_record(const bulk::Dispatch& base,
                                 const char* fault_spec) {
    ScreenResult r = screen_dispatch(base, fault_spec);
    quarantine_store() = std::move(r.quarantined);
    return r.dispatch;
}

const std::vector<KernelCheck>& quarantine_report() {
    (void)bulk::dispatch();  // force the one-time screening
    return quarantine_store();
}

}  // namespace gfr::guard
