#include "multipliers/product_layer.h"

#include <stdexcept>

namespace gfr::mult {

ProductLayer::ProductLayer(netlist::Netlist& nl, int m) : nl_{&nl}, m_{m} {
    if (m < 2) {
        throw std::invalid_argument{"ProductLayer: m must be >= 2"};
    }
    a_.reserve(static_cast<std::size_t>(m));
    b_.reserve(static_cast<std::size_t>(m));
    for (int i = 0; i < m; ++i) {
        a_.push_back(nl.add_input(a_name(i)));
    }
    for (int i = 0; i < m; ++i) {
        b_.push_back(nl.add_input(b_name(i)));
    }
    products_.assign(static_cast<std::size_t>(m) * static_cast<std::size_t>(m),
                     netlist::kInvalidNode);
}

netlist::NodeId ProductLayer::a(int i) const { return a_.at(static_cast<std::size_t>(i)); }

netlist::NodeId ProductLayer::b(int i) const { return b_.at(static_cast<std::size_t>(i)); }

netlist::NodeId ProductLayer::product(int i, int j) {
    auto& memo = products_.at(static_cast<std::size_t>(i) *
                                  static_cast<std::size_t>(m_) +
                              static_cast<std::size_t>(j));
    if (memo == netlist::kInvalidNode) {
        memo = nl_->make_and(a(i), b(j));
    }
    return memo;
}

netlist::NodeId ProductLayer::z_term(int lo, int hi) {
    if (lo >= hi) {
        throw std::invalid_argument{"ProductLayer::z_term: requires lo < hi"};
    }
    return nl_->make_xor(product(lo, hi), product(hi, lo));
}

netlist::NodeId ProductLayer::term(const st::Term& t) {
    return t.is_square() ? x_term(t.lo) : z_term(t.lo, t.hi);
}

netlist::NodeId ProductLayer::product_tree(std::span<const st::Term> terms) {
    std::vector<netlist::NodeId> leaves;
    for (const auto& t : terms) {
        if (t.is_square()) {
            leaves.push_back(x_term(t.lo));
        } else {
            leaves.push_back(product(t.lo, t.hi));
            leaves.push_back(product(t.hi, t.lo));
        }
    }
    return nl_->make_xor_tree(leaves, netlist::TreeShape::Balanced);
}

netlist::NodeId ProductLayer::term_tree(std::span<const st::Term> terms) {
    std::vector<netlist::NodeId> leaves;
    leaves.reserve(terms.size());
    for (const auto& t : terms) {
        leaves.push_back(term(t));
    }
    return nl_->make_xor_tree(leaves, netlist::TreeShape::Balanced);
}

std::string coeff_name(int k) { return "c" + std::to_string(k); }
std::string a_name(int k) { return "a" + std::to_string(k); }
std::string b_name(int k) { return "b" + std::to_string(k); }

}  // namespace gfr::mult
