#ifndef GFR_MULTIPLIERS_GENERATOR_H
#define GFR_MULTIPLIERS_GENERATOR_H

// The six multiplier architectures benchmarked in the paper's Table V, plus
// a naive two-step baseline.  Each generator emits a pure AND/XOR netlist
// with inputs a0..a(m-1), b0..b(m-1) and outputs c0..c(m-1) computing
// C = A*B in GF(2^m) for the field's modulus.
//
//   SchoolReduce    — naive schoolbook product + iterative chain reduction
//                     (not in Table V; sanity baseline)
//   PaarMastrovito  — [2] C. Paar: Mastrovito matrix rows with shared A-sums
//   RashidiDirect   — [8] reconstruction: each c_k is one balanced XOR tree
//                     over *all* contributing partial products (lowest depth,
//                     no cross-coefficient sharing)
//   ReyhaniHasan    — [3] reconstruction: iterated w_(i+1) = x*w_i mod f
//                     b-side network, then c_k = sum_i a_i * w_(i,k)
//                     (77 XOR / T_A+7T_X signature at (8,2), as the paper cites)
//   Imana2012       — [6] monolithic S_i/T_i balanced trees, then balanced
//                     coefficient trees (T_A+6T_X at (8,2))
//   Imana2016Paren  — [7] split S^j_i/T^j_i complete trees combined with the
//                     level-aware pairing ("hard parenthesised restrictions";
//                     T_A+5T_X at (8,2))
//   Date2018Flat    — THIS WORK: split terms summed flat; the restructuring
//                     is left to synthesis (see fpga::FlowOptions)
//   Karatsuba       — subquadratic Karatsuba-Ofman product + reduction
//                     (not in Table V; the classic comparison point)

#include "field/gf2m.h"
#include "netlist/netlist.h"

#include <string_view>
#include <vector>

namespace gfr::mult {

enum class Method : std::uint8_t {
    SchoolReduce,
    PaarMastrovito,
    RashidiDirect,
    ReyhaniHasan,
    Imana2012,
    Imana2016Paren,
    Date2018Flat,
    Karatsuba,
};

struct MethodInfo {
    Method method = Method::SchoolReduce;
    std::string_view key;        ///< stable identifier, e.g. "imana2016"
    std::string_view display;    ///< Table V row label, e.g. "[7]"
    std::string_view citation;   ///< human-readable description
    bool in_table5 = true;       ///< benchmarked in the paper's Table V?
    bool synthesis_freedom = false;  ///< paper maps this netlist after synthesis
};

/// All methods, Table V order (SchoolReduce last, marked not-in-table).
const std::vector<MethodInfo>& all_methods();

/// Metadata for one method.
const MethodInfo& method_info(Method method);

/// How a generator writes its expression into the netlist IR.
///
///   Shared  — hash-cons every gate at construction (the historical
///             behavior): structurally identical subterms exist once.
///   Literal — one gate per operator of the written expression, no
///             structural sharing above the (memoised) product layer.
///             This is the form the paper's flat-family gate counts
///             describe and the form handed to synthesis; recovering the
///             sharing is the optimization pipeline's job (src/opt).
///             Only the flat family supports it — every other Table V
///             architecture *prescribes* its sharing structure, so a
///             literal elaboration of those would not be that method.
enum class Elaboration : std::uint8_t { Shared, Literal };

/// Dispatch to the architecture-specific builder below.
netlist::Netlist build_multiplier(Method method, const field::Field& field);

/// Elaboration-aware dispatch.  Throws std::invalid_argument for
/// Elaboration::Literal on any method other than Date2018Flat.
netlist::Netlist build_multiplier(Method method, const field::Field& field,
                                  Elaboration elaboration);

netlist::Netlist build_school_reduce(const field::Field& field);
netlist::Netlist build_paar_mastrovito(const field::Field& field);
netlist::Netlist build_rashidi_direct(const field::Field& field);
netlist::Netlist build_reyhani_hasan(const field::Field& field);
netlist::Netlist build_imana2012(const field::Field& field);
netlist::Netlist build_imana2016_paren(const field::Field& field);
netlist::Netlist build_date2018_flat(const field::Field& field,
                                     Elaboration elaboration = Elaboration::Shared);

/// Declared in karatsuba.h; listed here so build_multiplier can dispatch.
netlist::Netlist build_karatsuba_default(const field::Field& field);

}  // namespace gfr::mult

#endif  // GFR_MULTIPLIERS_GENERATOR_H
