#include "multipliers/verify.h"

#include "acv/acv.h"
#include "exec/program.h"
#include "exec/run_kernels.h"
#include "multipliers/product_layer.h"
#include "netlist/simulate.h"
#include "verify/campaign.h"
#include "verify/lane_reference.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <memory>
#include <random>
#include <stdexcept>

namespace gfr::mult {

using field::Field;
using gf2::Poly;

std::string VerifyFailure::to_string() const {
    std::string out = "c" + std::to_string(coefficient) + " mismatch: netlist=" +
                      std::to_string(static_cast<int>(netlist_bit)) + " reference=" +
                      std::to_string(static_cast<int>(reference_bit)) + " for A=" +
                      a.to_string() + ", B=" + b.to_string();
    if (sweep_index != ~std::uint64_t{0}) {
        char repro[128];
        if (random_regime) {
            std::snprintf(repro, sizeof repro,
                          " [repro: seed=0x%llx sweep=%llu sweep_seed=0x%llx]",
                          static_cast<unsigned long long>(campaign_seed),
                          static_cast<unsigned long long>(sweep_index),
                          static_cast<unsigned long long>(
                              verify::Campaign::derive_sweep_seed(campaign_seed,
                                                                  sweep_index)));
        } else {
            std::snprintf(repro, sizeof repro,
                          " [repro: exhaustive sweep=%llu]",
                          static_cast<unsigned long long>(sweep_index));
        }
        out += repro;
    }
    return out;
}

namespace {

/// Fill `out` with the field element carried by `lane` across m input words
/// starting at `offset`, reusing the scratch word buffer.
void element_from_lane_into(std::span<const std::uint64_t> words, int offset, int m,
                            int lane, std::vector<std::uint64_t>& bits, Poly& out) {
    bits.assign(static_cast<std::size_t>((m + 63) / 64), 0);
    for (int i = 0; i < m; ++i) {
        if ((words[static_cast<std::size_t>(offset + i)] >> lane) & 1U) {
            bits[static_cast<std::size_t>(i / 64)] |= std::uint64_t{1} << (i % 64);
        }
    }
    out.assign_words(bits);
}

/// One-shot variant for failure reporting (off the hot path).
Poly element_from_lane(std::span<const std::uint64_t> words, int offset, int m,
                       int lane) {
    std::vector<std::uint64_t> bits;
    Poly out;
    element_from_lane_into(words, offset, m, lane, bits, out);
    return out;
}

/// Everything one campaign worker owns: execution scratch for the shared
/// compiled tape, the sweep's input/output words (sized for up to `blocks`
/// blocks of 64 lanes), the lane-reference scratch, and the element storage
/// plus engine scratch for the per-lane fallback regime.  The Program,
/// Field and LaneReference stay shared and immutable; workers never
/// contend, and sweeps are allocation-free in steady state.
struct SweepWorker {
    SweepWorker(int m, int blocks)
        : in_words(static_cast<std::size_t>(2 * m) * blocks, 0),
          out_words(static_cast<std::size_t>(m) * blocks, 0),
          oracle_diff(static_cast<std::size_t>(blocks), 0),
          oracle_work(static_cast<std::size_t>(8 * m + 64), 0) {}

    exec::Program::Scratch exec_scratch;
    std::vector<std::uint64_t> in_words;
    std::vector<std::uint64_t> out_words;
    std::vector<std::uint64_t> want_words;      // lane-major reference products
    std::vector<std::uint64_t> oracle_diff;     // per-block diff flags
    std::vector<std::uint64_t> oracle_work;     // >= 8m+64 kernel scratch words
    verify::LaneReference::Scratch lane_scratch;
    std::vector<std::uint64_t> lane_bits;       // per-lane element extraction
    std::vector<std::uint64_t> got_bits;        // per-lane netlist gather
    Poly a_elem;
    Poly b_elem;
    Poly product;
    field::FieldOps::Scratch ops_scratch;  // engine working buffers
};

/// Check one 64-lane block already simulated into out/in spans.  laneref is
/// non-null when the lane-major oracle covers this field.  The failure
/// reported is the lane-major first one (lowest lane, then lowest
/// coefficient), matching a bit-serial scan of the 64 assignments.
std::optional<VerifyFailure> check_block(SweepWorker& w, const Field& field,
                                         const verify::LaneReference* laneref,
                                         std::span<const std::uint64_t> in,
                                         std::span<const std::uint64_t> out) {
    const int m = field.degree();

    if (laneref != nullptr) {
        // Bitsliced reference: all 64 products in m^2 word ops, already
        // lane-major — the success path is m XOR-compares, for any word
        // count (the oracle is lane-major, so multi-word fields compare
        // exactly the same way).
        laneref->products(in, w.want_words, w.lane_scratch);
        std::uint64_t diff_any = 0;
        for (int k = 0; k < m; ++k) {
            diff_any |= out[static_cast<std::size_t>(k)] ^
                        w.want_words[static_cast<std::size_t>(k)];
        }
        if (diff_any == 0) {
            return std::nullopt;
        }
        const int lane = std::countr_zero(diff_any);
        for (int k = 0; k < m; ++k) {
            const bool got_bit = (out[static_cast<std::size_t>(k)] >> lane) & 1U;
            const bool want_bit =
                (w.want_words[static_cast<std::size_t>(k)] >> lane) & 1U;
            if (got_bit != want_bit) {
                return VerifyFailure{element_from_lane(in, 0, m, lane),
                                     element_from_lane(in, m, m, lane), k,
                                     got_bit, want_bit};
            }
        }
        return std::nullopt;  // unreachable: diff_any had a set bit
    }

    // Engine fallback (m beyond the lane oracle): per lane, one batched
    // engine product (FieldOps::mul through the worker's scratch) and a
    // word-level compare of the gathered netlist output.
    const std::size_t wn = static_cast<std::size_t>((m + 63) / 64);
    for (int lane = 0; lane < 64; ++lane) {
        element_from_lane_into(in, 0, m, lane, w.lane_bits, w.a_elem);
        element_from_lane_into(in, m, m, lane, w.lane_bits, w.b_elem);
        field.ops().mul(w.a_elem, w.b_elem, w.product, w.ops_scratch);
        w.got_bits.assign(wn, 0);
        for (int k = 0; k < m; ++k) {
            if ((out[static_cast<std::size_t>(k)] >> lane) & 1U) {
                w.got_bits[static_cast<std::size_t>(k / 64)] |= std::uint64_t{1}
                                                                << (k % 64);
            }
        }
        const auto pw = w.product.words();
        for (std::size_t word = 0; word < wn; ++word) {
            const std::uint64_t want_w = word < pw.size() ? pw[word] : 0;
            const std::uint64_t diff = w.got_bits[word] ^ want_w;
            if (diff == 0) {
                continue;
            }
            const int k = static_cast<int>(word) * 64 + std::countr_zero(diff);
            const bool got_bit = (w.got_bits[word] >> (k % 64)) & 1U;
            return VerifyFailure{w.a_elem, w.b_elem, k, got_bit, !got_bit};
        }
    }
    return std::nullopt;
}

/// Everything check_sweep needs beyond the worker: the shared tape, the
/// oracle selection (fused kernel + reduction view when the lane oracle
/// covers the field), and the backend pin.  Built once per campaign.
struct SweepPlan {
    const exec::Program* prog = nullptr;
    const Field* field = nullptr;
    const verify::LaneReference* laneref = nullptr;
    /// Fused sweep oracle of the same backend rung as the tape executor
    /// (scalar when forced or quarantined); only set when laneref is and
    /// VerifyOptions::fused_sweep_oracle is on — null falls back to the
    /// pre-PR-9 per-block check loop below.
    exec::OracleRunFn oracle_fn = nullptr;
    exec::SweepOracleView oracle_view;
    std::optional<exec::Backend> backend;
};

/// Execute the tape over the `blocks` blocks loaded in w.in_words and check
/// them in ascending order (so batching never changes which failure is
/// first).  The success path is one fused oracle call over the whole sweep
/// (per-block diff flags); a flagged block is re-extracted through the
/// scalar LaneReference in check_block, which stays the verdict authority —
/// block order and the lane-major first-failure rule are untouched.  With
/// the fused oracle off (plan.oracle_fn null), every block goes through
/// check_block directly — the pre-PR-9 configuration.  On
/// failure *failed_block is the in-sweep block index, letting the caller
/// report width-1 coordinates.
std::optional<VerifyFailure> check_sweep(SweepWorker& w, const SweepPlan& plan,
                                         int blocks, int* failed_block) {
    const Field& field = *plan.field;
    const std::size_t n_in = static_cast<std::size_t>(2 * field.degree());
    const std::size_t n_out = static_cast<std::size_t>(field.degree());
    const auto in = std::span{w.in_words}.first(n_in * blocks);
    const auto out = std::span{w.out_words}.first(n_out * blocks);
    if (plan.backend.has_value()) {
        plan.prog->run(in, out, w.exec_scratch, blocks, *plan.backend);
    } else {
        plan.prog->run(in, out, w.exec_scratch, blocks);
    }
    if (plan.laneref != nullptr && plan.oracle_fn != nullptr) {
        plan.oracle_fn(plan.oracle_view, w.in_words.data(), w.out_words.data(),
                       w.oracle_diff.data(), w.oracle_work.data(), blocks);
        for (int b = 0; b < blocks; ++b) {
            if (w.oracle_diff[static_cast<std::size_t>(b)] == 0) {
                continue;
            }
            auto failure = check_block(
                w, field, plan.laneref,
                std::span{w.in_words}.subspan(b * n_in, n_in),
                std::span{w.out_words}.subspan(b * n_out, n_out));
            if (failure.has_value()) {
                *failed_block = b;
                return failure;
            }
            // The scalar re-check found nothing: a conservative vector
            // flag never fails a verdict — keep scanning.
        }
        return std::nullopt;
    }
    for (int b = 0; b < blocks; ++b) {
        auto failure = check_block(
            w, field, plan.laneref,
            std::span{w.in_words}.subspan(b * n_in, n_in),
            std::span{w.out_words}.subspan(b * n_out, n_out));
        if (failure.has_value()) {
            *failed_block = b;
            return failure;
        }
    }
    return std::nullopt;
}

}  // namespace

/// Everything campaign-independent, prepared once at construction: the
/// compiled tape, the anchored oracles, the resolved sweep plan and the
/// block grouping.  run() shares all of it across campaigns.
struct MultiplierVerifier::Impl {
    const Field* field = nullptr;
    const netlist::Netlist* nl = nullptr;  ///< algebraic modes prove against it
    VerifyOptions options;
    int m = 0;
    bool exhaustive = false;
    exec::Program prog;
    std::unique_ptr<verify::LaneReference> laneref;
    SweepPlan plan;
    exec::BlockGrouping grouping;
};

MultiplierVerifier::~MultiplierVerifier() = default;
MultiplierVerifier::MultiplierVerifier(MultiplierVerifier&&) noexcept = default;
MultiplierVerifier& MultiplierVerifier::operator=(MultiplierVerifier&&) noexcept =
    default;

MultiplierVerifier::MultiplierVerifier(const netlist::Netlist& nl,
                                       const Field& field,
                                       const VerifyOptions& options) {
    const int m = field.degree();
    if (options.mode == VerifyMode::Algebraic) {
        // Pure algebraic mode needs no tape, no oracles, no sweep plan — and
        // it is the one mode that admits guarded netlists (extra checker
        // outputs; ports resolve by name inside prove_multiplier).  Validate
        // the interface now so construction throws like the other modes.
        if (static_cast<int>(nl.inputs().size()) != 2 * m) {
            throw std::invalid_argument{
                "verify_multiplier: port count does not match field"};
        }
        for (int i = 0; i < m; ++i) {
            if (nl.input_index("a" + std::to_string(i)) < 0 ||
                nl.input_index("b" + std::to_string(i)) < 0 ||
                nl.output_index("c" + std::to_string(i)) < 0) {
                throw std::invalid_argument{
                    "verify_multiplier: unexpected port naming"};
            }
        }
        impl_ = std::make_unique<Impl>();
        impl_->field = &field;
        impl_->nl = &nl;
        impl_->options = options;
        impl_->m = m;
        return;
    }
    if (static_cast<int>(nl.inputs().size()) != 2 * m ||
        static_cast<int>(nl.outputs().size()) != m) {
        throw std::invalid_argument{"verify_multiplier: port count does not match field"};
    }
    // Interface sanity: inputs must be a0.., b0.. and outputs c0.. in order.
    for (int i = 0; i < m; ++i) {
        if (nl.inputs()[static_cast<std::size_t>(i)].name != a_name(i) ||
            nl.inputs()[static_cast<std::size_t>(m + i)].name != b_name(i) ||
            nl.outputs()[static_cast<std::size_t>(i)].name != coeff_name(i)) {
            throw std::invalid_argument{"verify_multiplier: unexpected port naming"};
        }
    }

    impl_ = std::make_unique<Impl>();
    impl_->field = &field;
    impl_->nl = &nl;
    impl_->options = options;
    impl_->m = m;
    impl_->exhaustive = 2 * m <= options.max_exhaustive_inputs;

    // The netlist compiles once; every run() executes the shared tape.
    impl_->prog = exec::Program::compile(nl);

    // The sweeps compare the netlist against the fast engine; anchor the
    // engine itself to the independent reference arithmetic first, so a
    // reduction bug for this particular modulus cannot silently become the
    // verification oracle.
    {
        std::mt19937_64 oracle_rng{options.seed ^ 0x0A0A0A0AULL};
        for (int i = 0; i < 16; ++i) {
            const Poly a = field.random_element(oracle_rng);
            const Poly b = field.random_element(oracle_rng);
            if (field.mul(a, b) != field.mul_reference(a, b)) {
                throw std::logic_error{
                    "verify_multiplier: fast engine disagrees with reference arithmetic"};
            }
        }
    }

    // Fields up to the lane-oracle threshold use the bitsliced lane
    // reference as the sweep oracle; anchor it against the engine on one
    // sweep of random lanes before trusting it with the campaign.  The
    // anchor extracts each lane as a Poly, so it covers the multi-word
    // regime identically.
    std::unique_ptr<verify::LaneReference>& laneref = impl_->laneref;
    if (m <= options.lane_oracle_max_degree) {
        laneref = std::make_unique<verify::LaneReference>(field);
        verify::SweepRng rng{verify::Campaign::derive_sweep_seed(options.seed,
                                                                verify::kNoFailure)};
        std::vector<std::uint64_t> in(static_cast<std::size_t>(2 * m));
        for (auto& word : in) {
            word = rng();
        }
        std::vector<std::uint64_t> want;
        verify::LaneReference::Scratch scratch;
        laneref->products(in, want, scratch);
        for (int lane = 0; lane < 64; ++lane) {
            const Poly a = element_from_lane(in, 0, m, lane);
            const Poly b = element_from_lane(in, m, m, lane);
            const Poly c = field.mul(a, b);
            for (int k = 0; k < m; ++k) {
                const bool want_bit =
                    (want[static_cast<std::size_t>(k)] >> lane) & 1U;
                if (want_bit != c.coeff(k)) {
                    throw std::logic_error{
                        "verify_multiplier: lane reference disagrees with the engine"};
                }
            }
        }
    }

    // Resolve the sweep plan once: the fused sweep oracle follows the same
    // backend rung as the tape executor (the pinned backend for bench
    // ladders and differential tests, otherwise the screened process-wide
    // dispatch — which already reflects GFR_EXEC_FORCE_SCALAR and any
    // quarantine), so a verdict never mixes an unscreened oracle with a
    // screened tape.  An unavailable pinned backend still throws on the
    // first tape run, before its oracle could execute.
    SweepPlan& plan = impl_->plan;
    plan.prog = &impl_->prog;
    plan.field = &field;
    plan.laneref = laneref.get();
    plan.backend = options.exec_backend;
    if (laneref != nullptr && options.fused_sweep_oracle) {
        plan.oracle_fn = exec::kTapeScalar.oracle;
        if (options.exec_backend.has_value()) {
            if (const exec::TapeKernel* k =
                    exec::tape_kernel(*options.exec_backend);
                k != nullptr && k->oracle != nullptr) {
                plan.oracle_fn = k->oracle;
            }
        } else {
            plan.oracle_fn = exec::dispatch().kernel->oracle;
        }
        plan.oracle_view =
            exec::SweepOracleView{laneref->reduction_indices().data(),
                                  laneref->reduction_offsets().data(), m};
    }

    // Both regimes batch blocks into bitsliced passes (up to 1024 products
    // per full pass — what the SIMD backends feed on); random block contents
    // stay pinned to their width-1 index (see exec::BlockGrouping), so the
    // batching width never changes a verdict or a repro coordinate.
    const std::uint64_t total_blocks =
        impl_->exhaustive ? ((2 * m <= 6) ? 1 : (std::uint64_t{1} << (2 * m - 6)))
                          : static_cast<std::uint64_t>(options.random_sweeps);
    impl_->grouping = exec::BlockGrouping::over(
        total_blocks, true,
        options.max_batch_blocks > 0 ? options.max_batch_blocks
                                     : exec::Program::kMaxBlocks);
}

std::optional<VerifyFailure> MultiplierVerifier::run() const {
    const Impl& im = *impl_;
    if (im.options.mode != VerifyMode::Simulation) {
        acv::ProveOptions prove_options;
        prove_options.threads = im.options.threads;
        if (const auto proof =
                acv::prove_multiplier(*im.nl, *im.field, prove_options)) {
            VerifyFailure failure;
            failure.a = proof->witness_a;
            failure.b = proof->witness_b;
            failure.coefficient = proof->column;
            failure.netlist_bit = proof->netlist_bit;
            failure.reference_bit = proof->reference_bit;
            // sweep_index stays unrecorded: there is no sweep to replay —
            // to_string() prints the counterexample without repro coords.
            return failure;
        }
        if (im.options.mode == VerifyMode::Algebraic) {
            return std::nullopt;  // proved for all inputs
        }
    }
    const int m = im.m;
    const bool exhaustive = im.exhaustive;
    const VerifyOptions& options = im.options;
    const SweepPlan& plan = im.plan;
    const exec::BlockGrouping& grouping = im.grouping;
    const std::uint64_t total_sweeps = grouping.total_sweeps;

    // Random sweeps cost a batched tape execution plus 64 reference
    // products per block — worth sharding at a floor of one batched sweep
    // per worker.  Exhaustive sweeps are microsecond-cheap; keep the higher
    // floor so tiny spaces run inline.
    verify::Campaign campaign{{.threads = options.threads,
                               .min_sweeps_per_worker = exhaustive ? 64U : 1U}};
    const int workers = campaign.worker_count(total_sweeps);
    std::vector<std::optional<VerifyFailure>> payload(static_cast<std::size_t>(workers));
    std::vector<std::uint64_t> payload_sweep(static_cast<std::size_t>(workers),
                                             verify::kNoFailure);

    const auto factory = [&](int worker_id) -> verify::Campaign::SweepFn {
        auto worker = std::make_shared<SweepWorker>(m, grouping.group);
        return [&, worker_id, worker](std::uint64_t sweep) -> bool {
            const std::uint64_t first_block = grouping.first_block(sweep);
            const int blocks = grouping.blocks_in_sweep(sweep);
            if (exhaustive) {
                for (int b = 0; b < blocks; ++b) {
                    for (int i = 0; i < 2 * m; ++i) {
                        worker->in_words[static_cast<std::size_t>(b * 2 * m + i)] =
                            netlist::exhaustive_pattern(
                                i, first_block + static_cast<std::uint64_t>(b));
                    }
                }
            } else {
                // Each block's contents derive from its own width-1 index,
                // never the batched sweep number — a logged sweep_index
                // replays at any batching width.
                for (int b = 0; b < blocks; ++b) {
                    verify::SweepRng rng{verify::Campaign::derive_sweep_seed(
                        options.seed,
                        first_block + static_cast<std::uint64_t>(b))};
                    for (int i = 0; i < 2 * m; ++i) {
                        worker->in_words[static_cast<std::size_t>(b * 2 * m + i)] =
                            rng();
                    }
                }
            }
            int failed_block = 0;
            auto failure = check_sweep(*worker, plan, blocks, &failed_block);
            if (failure.has_value()) {
                failure->campaign_seed = options.seed;
                // Width-1 coordinates for both regimes: the failing block's
                // own index, invariant across batching widths and backends.
                failure->sweep_index =
                    first_block + static_cast<std::uint64_t>(failed_block);
                failure->random_regime = !exhaustive;
                payload[static_cast<std::size_t>(worker_id)] = std::move(failure);
                payload_sweep[static_cast<std::size_t>(worker_id)] = sweep;
                return true;
            }
            return false;
        };
    };

    const std::uint64_t failing_sweep = campaign.run(total_sweeps, factory);
    if (failing_sweep == verify::kNoFailure) {
        return std::nullopt;
    }
    for (int w = 0; w < workers; ++w) {
        if (payload_sweep[static_cast<std::size_t>(w)] == failing_sweep) {
            return payload[static_cast<std::size_t>(w)];
        }
    }
    return std::nullopt;  // unreachable: the failing worker recorded its payload
}

std::optional<VerifyFailure> verify_multiplier(const netlist::Netlist& nl,
                                               const Field& field,
                                               const VerifyOptions& options) {
    return MultiplierVerifier{nl, field, options}.run();
}

opt::OptResult optimize_and_verify(const netlist::Netlist& nl,
                                   const field::Field& field,
                                   const opt::OptOptions& opt_options,
                                   const VerifyOptions& verify_options) {
    opt::OptResult result = opt::optimize(nl, opt_options);
    if (const auto failure =
            verify_multiplier(result.netlist, field, verify_options)) {
        throw opt::VerificationError("multiplier", failure->to_string());
    }
    return result;
}

}  // namespace gfr::mult
