#include "multipliers/verify.h"

#include "multipliers/product_layer.h"
#include "netlist/simulate.h"

#include <bit>
#include <random>
#include <stdexcept>

namespace gfr::mult {

using field::Field;
using gf2::Poly;

std::string VerifyFailure::to_string() const {
    return "c" + std::to_string(coefficient) + " mismatch: netlist=" +
           std::to_string(static_cast<int>(netlist_bit)) + " reference=" +
           std::to_string(static_cast<int>(reference_bit)) + " for A=" + a.to_string() +
           ", B=" + b.to_string();
}

namespace {

/// Extract the field element carried by `lane` across the first/second half
/// of the input words.
Poly element_from_lane(std::span<const std::uint64_t> words, int offset, int m,
                       int lane) {
    std::vector<std::uint64_t> bits(static_cast<std::size_t>((m + 63) / 64), 0);
    for (int i = 0; i < m; ++i) {
        if ((words[static_cast<std::size_t>(offset + i)] >> lane) & 1U) {
            bits[static_cast<std::size_t>(i / 64)] |= std::uint64_t{1} << (i % 64);
        }
    }
    return Poly::from_words(std::move(bits));
}

std::optional<VerifyFailure> check_sweep(netlist::Simulator& sim, const Field& field,
                                         const std::vector<std::uint64_t>& in_words) {
    const int m = field.degree();
    const auto out_words = sim.run(in_words);
    for (int lane = 0; lane < 64; ++lane) {
        const Poly a = element_from_lane(in_words, 0, m, lane);
        const Poly b = element_from_lane(in_words, m, m, lane);
        const Poly expected = field.mul(a, b);
        for (int k = 0; k < m; ++k) {
            const bool got = (out_words[static_cast<std::size_t>(k)] >> lane) & 1U;
            const bool want = expected.coeff(k);
            if (got != want) {
                return VerifyFailure{a, b, k, got, want};
            }
        }
    }
    return std::nullopt;
}

}  // namespace

std::optional<VerifyFailure> verify_multiplier(const netlist::Netlist& nl,
                                               const Field& field,
                                               const VerifyOptions& options) {
    const int m = field.degree();
    if (static_cast<int>(nl.inputs().size()) != 2 * m ||
        static_cast<int>(nl.outputs().size()) != m) {
        throw std::invalid_argument{"verify_multiplier: port count does not match field"};
    }
    // Interface sanity: inputs must be a0.., b0.. and outputs c0.. in order.
    for (int i = 0; i < m; ++i) {
        if (nl.inputs()[static_cast<std::size_t>(i)].name != a_name(i) ||
            nl.inputs()[static_cast<std::size_t>(m + i)].name != b_name(i) ||
            nl.outputs()[static_cast<std::size_t>(i)].name != coeff_name(i)) {
            throw std::invalid_argument{"verify_multiplier: unexpected port naming"};
        }
    }

    netlist::Simulator sim{nl};
    std::vector<std::uint64_t> in_words(static_cast<std::size_t>(2 * m), 0);

    if (2 * m <= options.max_exhaustive_inputs) {
        const std::uint64_t blocks =
            (2 * m <= 6) ? 1 : (std::uint64_t{1} << (2 * m - 6));
        for (std::uint64_t block = 0; block < blocks; ++block) {
            for (int i = 0; i < 2 * m; ++i) {
                in_words[static_cast<std::size_t>(i)] = netlist::exhaustive_pattern(i, block);
            }
            if (auto failure = check_sweep(sim, field, in_words)) {
                return failure;
            }
        }
        return std::nullopt;
    }

    std::mt19937_64 rng{options.seed};
    for (int sweep = 0; sweep < options.random_sweeps; ++sweep) {
        for (auto& w : in_words) {
            w = rng();
        }
        if (auto failure = check_sweep(sim, field, in_words)) {
            return failure;
        }
    }
    return std::nullopt;
}

}  // namespace gfr::mult
