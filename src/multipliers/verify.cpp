#include "multipliers/verify.h"

#include "multipliers/product_layer.h"
#include "netlist/simulate.h"

#include <array>
#include <bit>
#include <random>
#include <stdexcept>

namespace gfr::mult {

using field::Field;
using gf2::Poly;

std::string VerifyFailure::to_string() const {
    return "c" + std::to_string(coefficient) + " mismatch: netlist=" +
           std::to_string(static_cast<int>(netlist_bit)) + " reference=" +
           std::to_string(static_cast<int>(reference_bit)) + " for A=" + a.to_string() +
           ", B=" + b.to_string();
}

namespace {

/// Fill `out` with the field element carried by `lane` across m input words
/// starting at `offset`, reusing the scratch word buffer.
void element_from_lane_into(std::span<const std::uint64_t> words, int offset, int m,
                            int lane, std::vector<std::uint64_t>& bits, Poly& out) {
    bits.assign(static_cast<std::size_t>((m + 63) / 64), 0);
    for (int i = 0; i < m; ++i) {
        if ((words[static_cast<std::size_t>(offset + i)] >> lane) & 1U) {
            bits[static_cast<std::size_t>(i / 64)] |= std::uint64_t{1} << (i % 64);
        }
    }
    out.assign_words(bits);
}

/// One-shot variant for failure reporting (off the hot path).
Poly element_from_lane(std::span<const std::uint64_t> words, int offset, int m,
                       int lane) {
    std::vector<std::uint64_t> bits;
    Poly out;
    element_from_lane_into(words, offset, m, lane, bits, out);
    return out;
}

/// Buffers shared by every sweep of one verification run: the simulator's
/// output words, the transposed operands / expected products for the
/// engine's batched multiply (m <= 64), reusable element storage for the
/// multi-word path, and an explicit engine scratch — so sweeps in either
/// regime are allocation-free in steady state, and concurrent verification
/// runs over one shared Field never contend (each run owns its scratch).
struct SweepScratch {
    std::vector<std::uint64_t> out_words;
    std::array<std::uint64_t, 64> a_lanes{};
    std::array<std::uint64_t, 64> b_lanes{};
    std::array<std::uint64_t, 64> expected{};
    std::vector<std::uint64_t> lane_bits;  // multi-word lane extraction
    Poly a_elem;
    Poly b_elem;
    Poly product;
    field::FieldOps::Scratch ops_scratch;  // engine working buffers
};

std::optional<VerifyFailure> check_sweep(netlist::Simulator& sim, const Field& field,
                                         const std::vector<std::uint64_t>& in_words,
                                         SweepScratch& scratch) {
    const int m = field.degree();
    sim.run_into(in_words, scratch.out_words);
    const auto& out_words = scratch.out_words;

    if (field.ops().single_word()) {
        // Transpose the 64 lanes into u64 operands and compute all 64
        // reference products in one allocation-free region call.
        for (int lane = 0; lane < 64; ++lane) {
            std::uint64_t a = 0;
            std::uint64_t b = 0;
            for (int i = 0; i < m; ++i) {
                a |= ((in_words[static_cast<std::size_t>(i)] >> lane) & std::uint64_t{1})
                     << i;
                b |= ((in_words[static_cast<std::size_t>(m + i)] >> lane) & std::uint64_t{1})
                     << i;
            }
            scratch.a_lanes[static_cast<std::size_t>(lane)] = a;
            scratch.b_lanes[static_cast<std::size_t>(lane)] = b;
        }
        field.ops().mul_region(scratch.a_lanes, scratch.b_lanes, scratch.expected);
        for (int lane = 0; lane < 64; ++lane) {
            const std::uint64_t want = scratch.expected[static_cast<std::size_t>(lane)];
            for (int k = 0; k < m; ++k) {
                const bool got_bit = (out_words[static_cast<std::size_t>(k)] >> lane) & 1U;
                const bool want_bit = (want >> k) & 1U;
                if (got_bit != want_bit) {
                    return VerifyFailure{
                        element_from_lane(in_words, 0, m, lane),
                        element_from_lane(in_words, m, m, lane), k, got_bit, want_bit};
                }
            }
        }
        return std::nullopt;
    }

    for (int lane = 0; lane < 64; ++lane) {
        element_from_lane_into(in_words, 0, m, lane, scratch.lane_bits, scratch.a_elem);
        element_from_lane_into(in_words, m, m, lane, scratch.lane_bits, scratch.b_elem);
        field.ops().mul(scratch.a_elem, scratch.b_elem, scratch.product,
                        scratch.ops_scratch);
        for (int k = 0; k < m; ++k) {
            const bool got = (out_words[static_cast<std::size_t>(k)] >> lane) & 1U;
            const bool want = scratch.product.coeff(k);
            if (got != want) {
                return VerifyFailure{scratch.a_elem, scratch.b_elem, k, got, want};
            }
        }
    }
    return std::nullopt;
}

}  // namespace

std::optional<VerifyFailure> verify_multiplier(const netlist::Netlist& nl,
                                               const Field& field,
                                               const VerifyOptions& options) {
    const int m = field.degree();
    if (static_cast<int>(nl.inputs().size()) != 2 * m ||
        static_cast<int>(nl.outputs().size()) != m) {
        throw std::invalid_argument{"verify_multiplier: port count does not match field"};
    }
    // Interface sanity: inputs must be a0.., b0.. and outputs c0.. in order.
    for (int i = 0; i < m; ++i) {
        if (nl.inputs()[static_cast<std::size_t>(i)].name != a_name(i) ||
            nl.inputs()[static_cast<std::size_t>(m + i)].name != b_name(i) ||
            nl.outputs()[static_cast<std::size_t>(i)].name != coeff_name(i)) {
            throw std::invalid_argument{"verify_multiplier: unexpected port naming"};
        }
    }

    // The sweeps compare the netlist against the fast engine; anchor the
    // engine itself to the independent reference arithmetic first, so a
    // reduction bug for this particular modulus cannot silently become the
    // verification oracle.
    {
        std::mt19937_64 oracle_rng{options.seed ^ 0x0A0A0A0AULL};
        for (int i = 0; i < 16; ++i) {
            const Poly a = field.random_element(oracle_rng);
            const Poly b = field.random_element(oracle_rng);
            if (field.mul(a, b) != field.mul_reference(a, b)) {
                throw std::logic_error{
                    "verify_multiplier: fast engine disagrees with reference arithmetic"};
            }
        }
    }

    // One simulator, one output buffer, one set of transpose scratch arrays
    // for the entire run — sweeps allocate nothing.
    netlist::Simulator sim{nl};
    SweepScratch scratch;
    std::vector<std::uint64_t> in_words(static_cast<std::size_t>(2 * m), 0);

    if (2 * m <= options.max_exhaustive_inputs) {
        const std::uint64_t blocks =
            (2 * m <= 6) ? 1 : (std::uint64_t{1} << (2 * m - 6));
        for (std::uint64_t block = 0; block < blocks; ++block) {
            for (int i = 0; i < 2 * m; ++i) {
                in_words[static_cast<std::size_t>(i)] = netlist::exhaustive_pattern(i, block);
            }
            if (auto failure = check_sweep(sim, field, in_words, scratch)) {
                return failure;
            }
        }
        return std::nullopt;
    }

    std::mt19937_64 rng{options.seed};
    for (int sweep = 0; sweep < options.random_sweeps; ++sweep) {
        for (auto& w : in_words) {
            w = rng();
        }
        if (auto failure = check_sweep(sim, field, in_words, scratch)) {
            return failure;
        }
    }
    return std::nullopt;
}

}  // namespace gfr::mult
