// Naive two-step baseline: schoolbook polynomial product (balanced d_k trees)
// followed by an *iterative chain* reduction x^deg -> x^(deg-m)*f_tail, the
// "classic polynomial basis multiplication" the paper's Section I describes
// before introducing Mastrovito-style combined matrices.

#include "multipliers/generator.h"
#include "multipliers/product_layer.h"

namespace gfr::mult {

netlist::Netlist build_school_reduce(const field::Field& field) {
    const int m = field.degree();
    netlist::Netlist nl;
    ProductLayer pl{nl, m};

    // Step 1: all 2m-1 convolution coefficients d_k as balanced product trees.
    std::vector<netlist::NodeId> sig(static_cast<std::size_t>(2 * m - 1));
    for (int k = 0; k <= 2 * m - 2; ++k) {
        std::vector<netlist::NodeId> leaves;
        const int lo_min = std::max(0, k - (m - 1));
        const int lo_max = std::min(k, m - 1);
        for (int i = lo_min; i <= lo_max; ++i) {
            leaves.push_back(pl.product(i, k - i));
        }
        sig[static_cast<std::size_t>(k)] = nl.make_xor_tree(leaves, netlist::TreeShape::Balanced);
    }

    // Step 2: reduce degree by degree.  x^deg = x^(deg-m) * (f - y^m), applied
    // highest degree first so each substitution lands on not-yet-consumed slots.
    std::vector<int> tail = field.modulus().support();
    tail.pop_back();  // drop the leading y^m term
    for (int deg = 2 * m - 2; deg >= m; --deg) {
        const netlist::NodeId t = sig[static_cast<std::size_t>(deg)];
        for (const int s : tail) {
            auto& slot = sig[static_cast<std::size_t>(deg - m + s)];
            slot = nl.make_xor(slot, t);
        }
    }
    for (int k = 0; k < m; ++k) {
        nl.add_output(coeff_name(k), sig[static_cast<std::size_t>(k)]);
    }
    return nl;
}

}  // namespace gfr::mult
