#include "multipliers/special.h"

#include "mastrovito/reduction_matrix.h"
#include "multipliers/product_layer.h"

#include <functional>
#include <stdexcept>

namespace gfr::mult {

using field::Field;
using gf2::Poly;

namespace {

/// Shared shape of all linear (XOR-only) operators: output k is the XOR of
/// the inputs selected by column k of a boolean matrix, where the matrix
/// column for input i is `image(i)` = the field element input i maps to.
netlist::Netlist build_linear_operator(const Field& field, int n_inputs,
                                       const std::string& input_prefix,
                                       const std::function<Poly(int)>& image) {
    const int m = field.degree();
    netlist::Netlist nl;
    std::vector<netlist::NodeId> inputs;
    inputs.reserve(static_cast<std::size_t>(n_inputs));
    for (int i = 0; i < n_inputs; ++i) {
        inputs.push_back(nl.add_input(input_prefix + std::to_string(i)));
    }
    // Column images, then per-output XOR trees over the selecting inputs.
    std::vector<Poly> columns;
    columns.reserve(static_cast<std::size_t>(n_inputs));
    for (int i = 0; i < n_inputs; ++i) {
        columns.push_back(image(i));
    }
    for (int k = 0; k < m; ++k) {
        std::vector<netlist::NodeId> leaves;
        for (int i = 0; i < n_inputs; ++i) {
            if (columns[static_cast<std::size_t>(i)].coeff(k)) {
                leaves.push_back(inputs[static_cast<std::size_t>(i)]);
            }
        }
        nl.add_output(coeff_name(k), nl.make_xor_tree(leaves, netlist::TreeShape::Balanced));
    }
    return nl;
}

}  // namespace

netlist::Netlist build_squarer(const Field& field) {
    return build_linear_operator(field, field.degree(), "a", [&](int i) {
        return Poly::monomial(2 * i) % field.modulus();
    });
}

netlist::Netlist build_constant_multiplier(const Field& field,
                                           const Field::Element& constant) {
    if (!field.is_element(constant)) {
        throw std::invalid_argument{"build_constant_multiplier: constant not in field"};
    }
    return build_linear_operator(field, field.degree(), "a", [&](int i) {
        return (constant * Poly::monomial(i)) % field.modulus();
    });
}

netlist::Netlist build_reducer(const Field& field) {
    const int m = field.degree();
    return build_linear_operator(field, 2 * m - 1, "d", [&](int i) {
        return Poly::monomial(i) % field.modulus();
    });
}

}  // namespace gfr::mult
