#include "multipliers/karatsuba.h"

#include "mastrovito/reduction_matrix.h"
#include "multipliers/product_layer.h"

#include <stdexcept>

namespace gfr::mult {

namespace {

using netlist::Netlist;
using netlist::NodeId;
using netlist::TreeShape;

/// Recursive Karatsuba over signal vectors: returns the 2n-1 coefficients of
/// the polynomial product of two n-signal operands.
std::vector<NodeId> karatsuba_product(Netlist& nl, std::span<const NodeId> a,
                                      std::span<const NodeId> b, int threshold) {
    const int n = static_cast<int>(a.size());
    if (n == 0) {
        return {};
    }
    if (n == 1) {
        return {nl.make_and(a[0], b[0])};
    }
    if (n <= threshold) {
        // Schoolbook convolution with balanced trees.
        std::vector<NodeId> d(static_cast<std::size_t>(2 * n - 1));
        for (int k = 0; k <= 2 * n - 2; ++k) {
            std::vector<NodeId> leaves;
            const int lo = std::max(0, k - (n - 1));
            const int hi = std::min(k, n - 1);
            for (int i = lo; i <= hi; ++i) {
                leaves.push_back(nl.make_and(a[static_cast<std::size_t>(i)],
                                             b[static_cast<std::size_t>(k - i)]));
            }
            d[static_cast<std::size_t>(k)] = nl.make_xor_tree(leaves, TreeShape::Balanced);
        }
        return d;
    }

    // Split low half h, high half n-h (h = floor(n/2)).
    const int h = n / 2;
    const auto a0 = a.subspan(0, static_cast<std::size_t>(h));
    const auto a1 = a.subspan(static_cast<std::size_t>(h));
    const auto b0 = b.subspan(0, static_cast<std::size_t>(h));
    const auto b1 = b.subspan(static_cast<std::size_t>(h));

    // Middle operands: (A0 + A1), (B0 + B1), zero-padded to the larger half.
    const int hw = n - h;  // high width >= h
    std::vector<NodeId> am(static_cast<std::size_t>(hw), nl.const0());
    std::vector<NodeId> bm(static_cast<std::size_t>(hw), nl.const0());
    for (int i = 0; i < hw; ++i) {
        const NodeId alo = (i < h) ? a0[static_cast<std::size_t>(i)] : nl.const0();
        const NodeId blo = (i < h) ? b0[static_cast<std::size_t>(i)] : nl.const0();
        am[static_cast<std::size_t>(i)] = nl.make_xor(alo, a1[static_cast<std::size_t>(i)]);
        bm[static_cast<std::size_t>(i)] = nl.make_xor(blo, b1[static_cast<std::size_t>(i)]);
    }

    const auto low = karatsuba_product(nl, a0, b0, threshold);     // 2h-1
    const auto high = karatsuba_product(nl, a1, b1, threshold);    // 2hw-1
    const auto mid = karatsuba_product(nl, am, bm, threshold);     // 2hw-1

    // D = low + x^h * (mid - low - high) + x^(2h) * high   (XOR arithmetic).
    std::vector<NodeId> d(static_cast<std::size_t>(2 * n - 1), nl.const0());
    for (std::size_t i = 0; i < low.size(); ++i) {
        d[i] = nl.make_xor(d[i], low[i]);
    }
    for (std::size_t i = 0; i < mid.size(); ++i) {
        NodeId term = mid[i];
        if (i < low.size()) {
            term = nl.make_xor(term, low[i]);
        }
        term = nl.make_xor(term, high[i]);
        d[i + static_cast<std::size_t>(h)] =
            nl.make_xor(d[i + static_cast<std::size_t>(h)], term);
    }
    for (std::size_t i = 0; i < high.size(); ++i) {
        d[i + static_cast<std::size_t>(2 * h)] =
            nl.make_xor(d[i + static_cast<std::size_t>(2 * h)], high[i]);
    }
    return d;
}

}  // namespace

netlist::Netlist build_karatsuba(const field::Field& field,
                                 const KaratsubaOptions& options) {
    if (options.schoolbook_threshold < 1) {
        throw std::invalid_argument{"build_karatsuba: threshold must be >= 1"};
    }
    const int m = field.degree();
    const mastrovito::ReductionMatrix q{field.modulus()};

    Netlist nl;
    ProductLayer pl{nl, m};
    std::vector<NodeId> a;
    std::vector<NodeId> b;
    for (int i = 0; i < m; ++i) {
        a.push_back(pl.a(i));
        b.push_back(pl.b(i));
    }
    const auto d = karatsuba_product(nl, a, b, options.schoolbook_threshold);

    for (int k = 0; k < m; ++k) {
        std::vector<NodeId> leaves{d[static_cast<std::size_t>(k)]};
        for (const int i : q.t_indices_for_coefficient(k)) {
            leaves.push_back(d[static_cast<std::size_t>(m + i)]);
        }
        nl.add_output(coeff_name(k), nl.make_xor_tree(leaves, TreeShape::Balanced));
    }
    return nl;
}

netlist::Netlist build_karatsuba_default(const field::Field& field) {
    return build_karatsuba(field, KaratsubaOptions{});
}

long karatsuba_and_count(int n, int schoolbook_threshold) {
    if (n <= 0) {
        return 0;
    }
    if (n == 1) {
        return 1;
    }
    if (n <= schoolbook_threshold) {
        return static_cast<long>(n) * n;
    }
    const int h = n / 2;
    const int hw = n - h;
    return karatsuba_and_count(h, schoolbook_threshold) +
           2 * karatsuba_and_count(hw, schoolbook_threshold);
}

}  // namespace gfr::mult
