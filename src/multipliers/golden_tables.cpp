#include "multipliers/golden_tables.h"

#include "field/field_catalog.h"
#include "multipliers/product_layer.h"
#include "st/st_split.h"
#include "st/st_terms.h"

#include <stdexcept>

namespace gfr::mult {

const std::string& table1_text() {
    static const std::string text = R"(c0 = S1 +T0 +T4 +T5 +T6;
c1 = S2 +T1 +T5 +T6;
c2 = S3 +T0 +T2 +T4 +T5;
c3 = S4 +T0 +T1 +T3 +T4;
c4 = S5 +T0 +T1 +T2 +T6;
c5 = S6 +T1 +T2 +T3;
c6 = S7 +T2 +T3 +T4;
c7 = S8 +T3 +T4 +T5;
)";
    return text;
}

const std::string& table3_text() {
    static const std::string text = R"(c0 = ((S01 +T10,4) +T20) + (T20,4 +T25,6);
c1 = (ST22,1 +T21) +T25,6;
c2 = ((ST13,2 + S13) +T20) + ((T10,4 +T15) + (T20,4 +T22));
c3 = ((T20,1 + S24) +T30,1) + ((T10,4 +T14) +T23);
c4 = (((ST15,0 +T12,6) + S25) +T30,1) + (T20,1 +T22);
c5 = ST36,1 + ((ST26,1 +T02) +T32,3);
c6 = ((ST17,2 + S17) + S27) + (T32,3 + (T04 +T14));
c7 = S38 + (T23 + (T24,5 +T04));
)";
    return text;
}

const std::string& table4_text() {
    static const std::string text = R"(c0 = S01 +T20 +T10 +T00 +T14 +T04 +T15 +T06;
c1 = S12 +T21 +T11 +T15 +T06;
c2 = S13 + S03 +T20 +T10 +T00 +T22 +T02 +T14 +T04 +T15;
c3 = S24 +T20 +T10 +T00 +T21 +T11 +T23 +T14 +T04;
c4 = S25 + S05 +T20 +T10 +T00 +T21 +T11 +T22 +T02 +T06;
c5 = S26 + S16 +T21 +T11 +T22 +T02 +T23;
c6 = S27 + S17 + S07 +T22 +T02 +T23 +T14 +T04;
c7 = S38 +T23 +T14 +T04 +T15;
)";
    return text;
}

const std::vector<std::string>& table2_expected_lines() {
    static const std::vector<std::string> lines = {
        "S^0_1 = x0",
        "S^1_2 = z^1_0",
        "S^0_3 = x1",
        "S^1_3 = z^2_0",
        "S^2_4 = (z^3_0 + z^2_1)",
        "S^0_5 = x2",
        "S^2_5 = (z^4_0 + z^3_1)",
        "S^1_6 = z^5_0",
        "S^2_6 = (z^4_1 + z^3_2)",
        "S^0_7 = x3",
        "S^1_7 = z^6_0",
        "S^2_7 = (z^5_1 + z^4_2)",
        "S^3_8 = (z^7_0 + z^6_1 + z^5_2 + z^4_3)",
        "T^0_0 = x4",
        "T^1_0 = z^7_1",
        "T^2_0 = (z^6_2 + z^5_3)",
        "T^1_1 = z^7_2",
        "T^2_1 = (z^6_3 + z^5_4)",
        "T^0_2 = x5",
        "T^2_2 = (z^7_3 + z^6_4)",
        "T^2_3 = (z^7_4 + z^6_5)",
        "T^0_4 = x6",
        "T^1_4 = z^7_5",
        "T^1_5 = z^7_6",
        "T^0_6 = x7",
    };
    return lines;
}

const std::vector<std::string>& section2_expected_st_lines() {
    static const std::vector<std::string> lines = {
        "S1 = x0",
        "S2 = z^1_0",
        "S3 = x1 + z^2_0",
        "S4 = z^3_0 + z^2_1",
        "S5 = x2 + z^4_0 + z^3_1",
        "S6 = z^5_0 + z^4_1 + z^3_2",
        "S7 = x3 + z^6_0 + z^5_1 + z^4_2",
        "S8 = z^7_0 + z^6_1 + z^5_2 + z^4_3",
        "T0 = x4 + z^7_1 + z^6_2 + z^5_3",
        "T1 = z^7_2 + z^6_3 + z^5_4",
        "T2 = x5 + z^7_3 + z^6_4",
        "T3 = z^7_4 + z^6_5",
        "T4 = x6 + z^7_5",
        "T5 = z^7_6",
        "T6 = x7",
    };
    return lines;
}

const std::vector<std::string>& section2_expected_split_lines() {
    static const std::vector<std::string> lines = {
        "S1 = S^0_1",
        "S2 = S^1_2",
        "S3 = S^1_3 + S^0_3",
        "S4 = S^2_4",
        "S5 = S^2_5 + S^0_5",
        "S6 = S^2_6 + S^1_6",
        "S7 = S^2_7 + S^1_7 + S^0_7",
        "S8 = S^3_8",
        "T0 = T^2_0 + T^1_0 + T^0_0",
        "T1 = T^2_1 + T^1_1",
        "T2 = T^2_2 + T^0_2",
        "T3 = T^2_3",
        "T4 = T^1_4 + T^0_4",
        "T5 = T^1_5",
        "T6 = T^0_6",
    };
    return lines;
}

namespace {

class EquationCompiler {
public:
    EquationCompiler(netlist::Netlist& nl, ProductLayer& pl, int m)
        : pl_{&pl}, m_{m}, tables_{st::make_split_tables(m)} {
        static_cast<void>(nl);
    }

    netlist::NodeId compile(const st::Expr& expr, netlist::TreeShape nary_shape) {
        if (expr.is_leaf()) {
            return atom_node(*expr.atom);
        }
        std::vector<netlist::NodeId> operands;
        operands.reserve(expr.children.size());
        for (const auto& child : expr.children) {
            operands.push_back(compile(child, nary_shape));
        }
        if (operands.size() == 2) {
            // Binary nesting is the paper's hard restriction: keep it verbatim.
            return pl_->nl().make_xor(operands[0], operands[1]);
        }
        return pl_->nl().make_xor_tree(operands, nary_shape);
    }

private:
    netlist::NodeId split_node(st::StKind kind, int index, int level) {
        const auto& sp = st::find_split_term(tables_, kind, index, level);
        return pl_->product_tree(sp.terms);
    }

    netlist::NodeId atom_node(const st::Atom& a) {
        using Kind = st::Atom::Kind;
        switch (a.kind) {
            case Kind::WholeS:
                return pl_->term_tree(st::make_s(m_, a.i).terms);
            case Kind::WholeT:
                return pl_->term_tree(st::make_t(m_, a.i).terms);
            case Kind::SplitS:
                return split_node(st::StKind::S, a.i, a.level);
            case Kind::SplitT:
                return split_node(st::StKind::T, a.i, a.level);
            case Kind::PairTT:
                return pl_->nl().make_xor(split_node(st::StKind::T, a.i, a.level - 1),
                                          split_node(st::StKind::T, a.j, a.level - 1));
            case Kind::PairST:
                return pl_->nl().make_xor(split_node(st::StKind::S, a.i, a.level - 1),
                                          split_node(st::StKind::T, a.j, a.level - 1));
        }
        throw std::logic_error{"EquationCompiler: unknown atom kind"};
    }

    ProductLayer* pl_;
    int m_;
    st::SplitTables tables_;
};

}  // namespace

netlist::Netlist compile_equations(const std::vector<st::CoeffEquation>& equations,
                                   const field::Field& field,
                                   netlist::TreeShape nary_shape) {
    const int m = field.degree();
    if (static_cast<int>(equations.size()) != m) {
        throw std::invalid_argument{"compile_equations: need exactly m equations"};
    }
    netlist::Netlist nl;
    ProductLayer pl{nl, m};
    EquationCompiler compiler{nl, pl, m};
    // Equations may arrive in any order; emit outputs c0..c(m-1).
    std::vector<const st::CoeffEquation*> by_k(static_cast<std::size_t>(m), nullptr);
    for (const auto& eq : equations) {
        if (eq.k < 0 || eq.k >= m || by_k[static_cast<std::size_t>(eq.k)] != nullptr) {
            throw std::invalid_argument{"compile_equations: bad/duplicate coefficient index"};
        }
        by_k[static_cast<std::size_t>(eq.k)] = &eq;
    }
    for (int k = 0; k < m; ++k) {
        nl.add_output(coeff_name(k), compiler.compile(by_k[static_cast<std::size_t>(k)]->expr,
                                                      nary_shape));
    }
    return nl;
}

netlist::Netlist golden_table1_netlist() {
    const auto eqs =
        st::parse_coefficient_table(table1_text(), st::ParseMode::WholeFunctions);
    return compile_equations(eqs, field::gf256_paper_field(), netlist::TreeShape::Balanced);
}

netlist::Netlist golden_table3_netlist() {
    const auto eqs = st::parse_coefficient_table(table3_text(), st::ParseMode::SplitTerms);
    return compile_equations(eqs, field::gf256_paper_field(), netlist::TreeShape::Balanced);
}

netlist::Netlist golden_table4_netlist() {
    const auto eqs = st::parse_coefficient_table(table4_text(), st::ParseMode::SplitTerms);
    return compile_equations(eqs, field::gf256_paper_field(), netlist::TreeShape::Balanced);
}

}  // namespace gfr::mult
