// THIS WORK (DATE 2018): the same split S^j_i/T^j_i complete trees as [7],
// but each coefficient is a *flat* sum of split terms with no prescribed
// association (Table IV).  The netlist below realises the flat sums with a
// default balanced shape; when mapped through fpga::run_flow with
// synthesis_freedom = true (the paper's setting for this method), the
// synthesis pipeline is free to re-associate and share across coefficients —
// the freedom the paper gives Xilinx XST.
//
// Term order matches Table IV: the splits of S_(k+1) by descending level,
// then for each contributing T_i (ascending i) its splits by descending
// level.

#include "mastrovito/reduction_matrix.h"
#include "multipliers/generator.h"
#include "multipliers/product_layer.h"
#include "st/st_split.h"

#include <algorithm>

namespace gfr::mult {

netlist::Netlist build_date2018_flat(const field::Field& field,
                                     Elaboration elaboration) {
    const int m = field.degree();
    const mastrovito::ReductionMatrix q{field.modulus()};
    const st::SplitTables tables = st::make_split_tables(m);

    netlist::Netlist nl;
    ProductLayer pl{nl, m};
    // Literal elaboration writes the Table IV flat sums one gate per
    // operator: only the product plane (memoised by ProductLayer) is
    // shared, matching the paper's flat gate-count accounting.  The
    // synthesis/optimization pipeline is what re-discovers the sharing.
    nl.set_structural_sharing(elaboration == Elaboration::Shared);

    auto append_desc = [&](const std::vector<st::SplitTerm>& splits,
                           std::vector<netlist::NodeId>& leaves) {
        auto sorted = splits;
        std::sort(sorted.begin(), sorted.end(),
                  [](const st::SplitTerm& a, const st::SplitTerm& b) {
                      return a.level > b.level;
                  });
        for (const auto& sp : sorted) {
            leaves.push_back(pl.product_tree(sp.terms));
        }
    };

    for (int k = 0; k < m; ++k) {
        std::vector<netlist::NodeId> leaves;
        append_desc(tables.s[static_cast<std::size_t>(k)], leaves);
        for (const int i : q.t_indices_for_coefficient(k)) {
            append_desc(tables.t[static_cast<std::size_t>(i)], leaves);
        }
        nl.add_output(coeff_name(k), nl.make_xor_tree(leaves, netlist::TreeShape::Balanced));
    }
    return nl;
}

}  // namespace gfr::mult
