#ifndef GFR_MULTIPLIERS_PRODUCT_LAYER_H
#define GFR_MULTIPLIERS_PRODUCT_LAYER_H

// Common input frame shared by every multiplier generator: primary inputs
// a0..a(m-1) and b0..b(m-1) plus memoised builders for the elementary pieces
// of the paper's algebra — partial products a_i*b_j, square terms x_k and
// cross terms z^j_i.  The partial products are memoised by the layer itself
// (the product plane is physical hardware computed once, whatever the
// summation network above it looks like), so they stay unique even under a
// literal elaboration with netlist structural sharing disabled; everything
// above the products relies on the netlist's hash-consing when enabled.

#include "netlist/netlist.h"
#include "st/st_terms.h"

#include <span>
#include <string>

namespace gfr::mult {

class ProductLayer {
public:
    /// Adds the 2m inputs (a0.., then b0..) to `nl`.
    ProductLayer(netlist::Netlist& nl, int m);

    [[nodiscard]] int m() const noexcept { return m_; }
    [[nodiscard]] netlist::Netlist& nl() noexcept { return *nl_; }

    [[nodiscard]] netlist::NodeId a(int i) const;
    [[nodiscard]] netlist::NodeId b(int i) const;

    /// Partial product a_i * b_j.
    netlist::NodeId product(int i, int j);

    /// x_k = a_k * b_k.
    netlist::NodeId x_term(int k) { return product(k, k); }

    /// z^hi_lo = a_lo*b_hi + a_hi*b_lo.  Requires lo < hi.
    netlist::NodeId z_term(int lo, int hi);

    /// A term of an S/T function: x for squares, z for crosses.
    netlist::NodeId term(const st::Term& t);

    /// Balanced XOR tree over the 2^j *elementary products* of a split-term
    /// group, in listing order — the "complete binary tree" of the paper.
    /// (For z terms, the two products are adjacent leaves, so the tree's
    /// bottom level re-creates — and shares — the z XOR nodes.)
    netlist::NodeId product_tree(std::span<const st::Term> terms);

    /// Balanced XOR tree whose *leaves are the terms themselves* (z already
    /// collapsed to one node) — the monolithic construction of [6].
    netlist::NodeId term_tree(std::span<const st::Term> terms);

private:
    netlist::Netlist* nl_;
    int m_ = 0;
    std::vector<netlist::NodeId> a_;
    std::vector<netlist::NodeId> b_;
    std::vector<netlist::NodeId> products_;  ///< m*m memo, kInvalidNode = unbuilt
};

/// Canonical output name "c<k>".
std::string coeff_name(int k);

/// Canonical input names "a<k>" / "b<k>".
std::string a_name(int k);
std::string b_name(int k);

}  // namespace gfr::mult

#endif  // GFR_MULTIPLIERS_PRODUCT_LAYER_H
