// [7] Imana TCAS-I 2016: split every S_i/T_i into complete-binary-tree terms
// S^j_i/T^j_i (Table II) and combine the terms of each coefficient with the
// level-aware pairing that yields the minimum XOR depth ("terms in
// parenthesis must be XORed previously" — the hard restrictions of Table III).
//
// The pairing is the Huffman rule for the max-plus-one cost: repeatedly
// combine the two lowest-level items; the combination has level
// max(l1, l2) + 1.  This reproduces the paper's T_A + 5T_X at (8,2) and is
// provably depth-optimal for the given item levels.

#include "mastrovito/reduction_matrix.h"
#include "multipliers/generator.h"
#include "multipliers/product_layer.h"
#include "st/st_split.h"

#include <queue>
#include <tuple>

namespace gfr::mult {

netlist::Netlist build_imana2016_paren(const field::Field& field) {
    const int m = field.degree();
    const mastrovito::ReductionMatrix q{field.modulus()};
    const st::SplitTables tables = st::make_split_tables(m);

    netlist::Netlist nl;
    ProductLayer pl{nl, m};

    // (level, tiebreak, node): min-heap on level, insertion order on ties so
    // the construction is deterministic.
    using Item = std::tuple<int, int, netlist::NodeId>;
    const auto cmp = [](const Item& a, const Item& b) {
        return std::tie(std::get<0>(a), std::get<1>(a)) >
               std::tie(std::get<0>(b), std::get<1>(b));
    };

    for (int k = 0; k < m; ++k) {
        std::priority_queue<Item, std::vector<Item>, decltype(cmp)> heap{cmp};
        int seq = 0;
        auto push_splits = [&](const std::vector<st::SplitTerm>& splits) {
            for (const auto& sp : splits) {
                heap.emplace(sp.level, seq++, pl.product_tree(sp.terms));
            }
        };
        push_splits(tables.s[static_cast<std::size_t>(k)]);  // S_(k+1)
        for (const int i : q.t_indices_for_coefficient(k)) {
            push_splits(tables.t[static_cast<std::size_t>(i)]);
        }
        while (heap.size() > 1) {
            const auto [la, sa, na] = heap.top();
            heap.pop();
            const auto [lb, sb, nb] = heap.top();
            heap.pop();
            heap.emplace(std::max(la, lb) + 1, seq++, nl.make_xor(na, nb));
        }
        nl.add_output(coeff_name(k), std::get<2>(heap.top()));
    }
    return nl;
}

}  // namespace gfr::mult
