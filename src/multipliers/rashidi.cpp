// [8] Rashidi/Farashahi/Sayedi reconstruction (the exact gate netlist of the
// pipelined original is not published): every product coefficient is one
// balanced XOR tree over ALL partial products that reduce onto it — the
// fully-flattened reduced ANF.  This is the minimum-depth organisation
// (T_A + ceil(log2 |terms|) T_X) at the cost of foregoing cross-coefficient
// sharing, matching the Table V signature of [8]: lowest delay, LUT count
// above [3]/this-work.  See DESIGN.md, substitution table.

#include "mastrovito/reduction_matrix.h"
#include "multipliers/generator.h"
#include "multipliers/product_layer.h"

namespace gfr::mult {

netlist::Netlist build_rashidi_direct(const field::Field& field) {
    const int m = field.degree();
    const mastrovito::ReductionMatrix q{field.modulus()};

    netlist::Netlist nl;
    ProductLayer pl{nl, m};

    // All terms of convolution coefficient d_k with the mirror pairs
    // (a_i*b_j + a_j*b_i) pre-folded into z nodes: the product-pair layer is
    // then shared across every coefficient using the same pair, and the
    // depth is unchanged (2t products take ceil(log2 2t) levels either way).
    auto d_terms = [&](int k, std::vector<netlist::NodeId>& leaves) {
        const int lo_min = std::max(0, k - (m - 1));
        for (int i = lo_min; 2 * i <= k; ++i) {
            const int j = k - i;
            if (j > m - 1) {
                continue;
            }
            leaves.push_back(i == j ? pl.x_term(i) : pl.z_term(i, j));
        }
    };

    for (int k = 0; k < m; ++k) {
        std::vector<netlist::NodeId> leaves;
        d_terms(k, leaves);  // d_k itself
        for (const int i : q.t_indices_for_coefficient(k)) {
            d_terms(m + i, leaves);  // every d_(m+i) folding onto c_k
        }
        nl.add_output(coeff_name(k), nl.make_xor_tree(leaves, netlist::TreeShape::Balanced));
    }
    return nl;
}

}  // namespace gfr::mult
