#ifndef GFR_MULTIPLIERS_VERIFY_H
#define GFR_MULTIPLIERS_VERIFY_H

// Functional verification of a multiplier netlist against the reference
// field arithmetic (field::Field::mul).
//
// The netlist must expose inputs a0..a(m-1), b0..b(m-1) and outputs
// c0..c(m-1).  For 2m <= max_exhaustive_inputs the check enumerates all
// 2^(2m) operand pairs (word-parallel, 64 per sweep); otherwise it runs
// random sweeps, each verifying 64 random products bit-exactly.
//
// The netlist compiles once into an exec::Program tape (DCE'd, fused,
// liveness-scheduled); every sweep executes the tape instead of
// interpreting the node vector, and exhaustive regimes batch up to four
// enumeration blocks (256 test vectors) into one bitsliced pass.
//
// The sweep space is driven through verify::Campaign: it is sharded across
// worker threads (each owning its execution scratch over the one shared
// immutable Program and Field), random sweeps draw their PRNG seed from
// (options.seed, sweep index) so their contents never depend on scheduling,
// and the reported failure is the globally first one — the verdict and the
// counterexample are bit-identical at any thread count.

#include "field/gf2m.h"
#include "netlist/netlist.h"
#include "opt/opt.h"

#include <cstdint>
#include <optional>
#include <string>

namespace gfr::mult {

struct VerifyOptions {
    int max_exhaustive_inputs = 22;  ///< exhaustive iff 2m <= this (m=11 -> 2^22)
    int random_sweeps = 64;          ///< 64 random products per sweep
    std::uint64_t seed = 0xD1CEULL;
    int threads = 0;  ///< campaign workers; <= 0 = hardware concurrency
    /// Sweep oracle selection: fields with m <= this use the bitsliced
    /// lane-major verify::LaneReference (m^2 word ops for all 64 reference
    /// products, no per-lane transposes); larger fields fall back to 64
    /// per-lane engine products.  Measured (BENCH_4, single core): the lane
    /// oracle leads 26x at m=163 and still 8x at m=571 — the fallback's
    /// per-lane bit transposes dominate its engine muls at every practical
    /// degree — so the default covers the whole differential tier.  0
    /// forces the engine fallback (differential tests exercise both).
    int lane_oracle_max_degree = 1024;
};

/// A failing product: the operands and the first differing coefficient.
struct VerifyFailure {
    field::Field::Element a;
    field::Field::Element b;
    int coefficient = 0;
    bool netlist_bit = false;
    bool reference_bit = false;

    /// Reproduction coordinates, filled by verify_multiplier: rerun with
    /// VerifyOptions.seed = campaign_seed and this sweep regenerates the
    /// failing vectors (random regime contents are a pure function of
    /// Campaign::derive_sweep_seed(campaign_seed, sweep_index), which
    /// to_string() prints as a one-line repro recipe).
    std::uint64_t campaign_seed = 0;
    std::uint64_t sweep_index = ~std::uint64_t{0};  ///< ~0 = not recorded
    bool random_regime = false;

    [[nodiscard]] std::string to_string() const;
};

/// std::nullopt on success.  Throws std::invalid_argument when the netlist
/// interface does not look like an m-bit multiplier for this field.
std::optional<VerifyFailure> verify_multiplier(const netlist::Netlist& nl,
                                               const field::Field& field,
                                               const VerifyOptions& options = {});

/// The productive order for guarded designs is optimize-then-guard, and this
/// is the seam every consumer (flow, emitters, reports, demos) goes through:
/// run the campaign-gated optimization pipeline, then re-verify the
/// optimized netlist against the reference field arithmetic end-to-end.
/// Throws opt::VerificationError when a pass fails its equivalence gate OR
/// when the optimized multiplier fails the reference check (pass name
/// "multiplier", detail = the failure's repro string) — a caller can never
/// obtain an unverified optimized netlist from this function.
opt::OptResult optimize_and_verify(const netlist::Netlist& nl,
                                   const field::Field& field,
                                   const opt::OptOptions& opt_options = {},
                                   const VerifyOptions& verify_options = {});

}  // namespace gfr::mult

#endif  // GFR_MULTIPLIERS_VERIFY_H
