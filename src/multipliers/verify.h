#ifndef GFR_MULTIPLIERS_VERIFY_H
#define GFR_MULTIPLIERS_VERIFY_H

// Functional verification of a multiplier netlist against the reference
// field arithmetic (field::Field::mul).
//
// The netlist must expose inputs a0..a(m-1), b0..b(m-1) and outputs
// c0..c(m-1).  For 2m <= max_exhaustive_inputs the check enumerates all
// 2^(2m) operand pairs (word-parallel, 64 per sweep); otherwise it runs
// random sweeps, each verifying 64 random products bit-exactly.
//
// The netlist compiles once into an exec::Program tape (DCE'd, fused,
// liveness-scheduled); every sweep executes the tape — on the dispatched
// SIMD backend by default — and both regimes batch up to
// exec::Program::kMaxBlocks blocks (1024 test vectors) into one bitsliced
// pass.  Batching and backend choice never move a counterexample: blocks
// are checked in ascending order within a sweep, and random block contents
// are seeded from the block's own width-1 index.
//
// The sweep space is driven through verify::Campaign: it is sharded across
// worker threads (each owning its execution scratch over the one shared
// immutable Program and Field), random sweeps draw their PRNG seed from
// (options.seed, sweep index) so their contents never depend on scheduling,
// and the reported failure is the globally first one — the verdict and the
// counterexample are bit-identical at any thread count.

#include "field/gf2m.h"
#include "netlist/netlist.h"
#include "opt/opt.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

namespace gfr::exec {
enum class Backend : std::uint8_t;  // exec/run_kernels.h
}

namespace gfr::mult {

/// Which check(s) a verifier runs.  Simulation is the campaign described
/// above.  Algebraic replaces it with acv::prove_multiplier — backward
/// rewriting to canonical ANF, a *proof* over all inputs with zero
/// simulation, and the only mode that accepts CED-guarded netlists (ports
/// resolve by name; checker output lanes are excluded from the signature).
/// Both runs the algebraic proof first and the simulation campaign after
/// it, failing on whichever trips.
enum class VerifyMode : std::uint8_t {
    Simulation,
    Algebraic,
    Both,
};

struct VerifyOptions {
    int max_exhaustive_inputs = 22;  ///< exhaustive iff 2m <= this (m=11 -> 2^22)
    int random_sweeps = 64;          ///< 64 random products per sweep
    std::uint64_t seed = 0xD1CEULL;
    int threads = 0;  ///< campaign workers; <= 0 = hardware concurrency
    /// Sweep oracle selection: fields with m <= this use the bitsliced
    /// lane-major verify::LaneReference (m^2 word ops for all 64 reference
    /// products, no per-lane transposes); larger fields fall back to 64
    /// per-lane engine products.  Measured (BENCH_4, single core): the lane
    /// oracle leads 26x at m=163 and still 8x at m=571 — the fallback's
    /// per-lane bit transposes dominate its engine muls at every practical
    /// degree — so the default covers the whole differential tier.  0
    /// forces the engine fallback (differential tests exercise both).
    int lane_oracle_max_degree = 1024;
    /// Blocks per batched tape pass (clamped to [1, exec::Program::
    /// kMaxBlocks]); 0 = full width.  The verdict and counterexample
    /// coordinates are invariant across widths — this knob only trades
    /// tape-decode amortisation against sweep granularity, and the
    /// differential tests sweep it.
    int max_batch_blocks = 0;
    /// Execute sweeps on this specific tape backend instead of the
    /// process-wide exec::dispatch() selection (bench ladders, differential
    /// tests).  Throws like Program::run when the backend is unavailable.
    std::optional<exec::Backend> exec_backend{};
    /// Check each sweep with one fused oracle call (the kernel-tier
    /// schoolbook + reduction + compare over all blocks, following the tape
    /// backend's rung) instead of the pre-PR-9 per-block
    /// LaneReference::products + compare loop.  Verdicts and counterexample
    /// coordinates are identical either way — the differential tests sweep
    /// it (the bench freezes its PR-5 baseline as a standalone verbatim
    /// loop instead).  Ignored in the engine-fallback regime (laneref
    /// absent).
    bool fused_sweep_oracle = true;
    /// See VerifyMode.  Algebraic failures surface as VerifyFailure with the
    /// proof's synthesized witness operands and divergent coefficient;
    /// sweep_index stays unrecorded (there is no sweep to replay).
    VerifyMode mode = VerifyMode::Simulation;
};

/// A failing product: the operands and the first differing coefficient.
struct VerifyFailure {
    field::Field::Element a;
    field::Field::Element b;
    int coefficient = 0;
    bool netlist_bit = false;
    bool reference_bit = false;

    /// Reproduction coordinates, filled by verify_multiplier.  sweep_index
    /// is always the WIDTH-1 index of the failing 64-lane block (batching
    /// groups blocks into wider sweeps, but coordinates stay in the
    /// unbatched numbering so they replay at any max_batch_blocks): random
    /// regime contents are a pure function of
    /// Campaign::derive_sweep_seed(campaign_seed, sweep_index), which
    /// to_string() prints as a one-line repro recipe.
    std::uint64_t campaign_seed = 0;
    std::uint64_t sweep_index = ~std::uint64_t{0};  ///< ~0 = not recorded
    bool random_regime = false;

    [[nodiscard]] std::string to_string() const;
};

/// Reusable campaign verifier.  Construction does everything that is
/// independent of an individual campaign run: validates the multiplier
/// interface, compiles the netlist into the execution tape, anchors the
/// engine and the lane oracle against the reference arithmetic, and
/// resolves the sweep plan (backend rung, fused oracle, batching).  Each
/// run() then executes one full campaign over the prepared plan and
/// reports exactly what verify_multiplier would.  Callers that verify the
/// same design repeatedly (bench ladders, differential sweeps) amortise
/// the preparation; one-shot callers use verify_multiplier below.  The
/// netlist and the field must outlive the verifier; options are fixed at
/// construction.
class MultiplierVerifier {
public:
    MultiplierVerifier(const netlist::Netlist& nl, const field::Field& field,
                       const VerifyOptions& options = {});
    ~MultiplierVerifier();
    MultiplierVerifier(MultiplierVerifier&&) noexcept;
    MultiplierVerifier& operator=(MultiplierVerifier&&) noexcept;

    /// One full campaign; std::nullopt on success.  Deterministic for fixed
    /// construction options at any thread count.
    [[nodiscard]] std::optional<VerifyFailure> run() const;

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/// std::nullopt on success.  Throws std::invalid_argument when the netlist
/// interface does not look like an m-bit multiplier for this field.
/// One-shot wrapper over MultiplierVerifier (prepare + one campaign).
std::optional<VerifyFailure> verify_multiplier(const netlist::Netlist& nl,
                                               const field::Field& field,
                                               const VerifyOptions& options = {});

/// The productive order for guarded designs is optimize-then-guard, and this
/// is the seam every consumer (flow, emitters, reports, demos) goes through:
/// run the campaign-gated optimization pipeline, then re-verify the
/// optimized netlist against the reference field arithmetic end-to-end.
/// Throws opt::VerificationError when a pass fails its equivalence gate OR
/// when the optimized multiplier fails the reference check (pass name
/// "multiplier", detail = the failure's repro string) — a caller can never
/// obtain an unverified optimized netlist from this function.
opt::OptResult optimize_and_verify(const netlist::Netlist& nl,
                                   const field::Field& field,
                                   const opt::OptOptions& opt_options = {},
                                   const VerifyOptions& verify_options = {});

}  // namespace gfr::mult

#endif  // GFR_MULTIPLIERS_VERIFY_H
