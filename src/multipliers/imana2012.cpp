// [6] Imana TCAS-II 2012: the S_i/T_i decomposition.  Each function is built
// *monolithically* as a balanced binary tree over its term list (z terms are
// one XOR of two products, matching "binary trees of 2-input XOR gates with
// a lower level of 2-input AND gates"), and each product coefficient is a
// balanced tree over { S_(k+1) } union { T_i : Q[i][k] = 1 } — the Table I
// equations, exactly.

#include "mastrovito/reduction_matrix.h"
#include "multipliers/generator.h"
#include "multipliers/product_layer.h"
#include "st/st_terms.h"

namespace gfr::mult {

netlist::Netlist build_imana2012(const field::Field& field) {
    const int m = field.degree();
    const mastrovito::ReductionMatrix q{field.modulus()};

    netlist::Netlist nl;
    ProductLayer pl{nl, m};

    std::vector<netlist::NodeId> s_node(static_cast<std::size_t>(m) + 1);
    for (int i = 1; i <= m; ++i) {
        s_node[static_cast<std::size_t>(i)] = pl.term_tree(st::make_s(m, i).terms);
    }
    std::vector<netlist::NodeId> t_node(static_cast<std::size_t>(m - 1));
    for (int i = 0; i <= m - 2; ++i) {
        t_node[static_cast<std::size_t>(i)] = pl.term_tree(st::make_t(m, i).terms);
    }

    for (int k = 0; k < m; ++k) {
        std::vector<netlist::NodeId> leaves{s_node[static_cast<std::size_t>(k) + 1]};
        for (const int i : q.t_indices_for_coefficient(k)) {
            leaves.push_back(t_node[static_cast<std::size_t>(i)]);
        }
        nl.add_output(coeff_name(k), nl.make_xor_tree(leaves, netlist::TreeShape::Balanced));
    }
    return nl;
}

}  // namespace gfr::mult
