// [2] C. Paar's Mastrovito-style bit-parallel multiplier: the product matrix
// M(A) is materialised as shared "A-sum" XOR trees (one per distinct index
// subset), each row k then forms c_k = XOR_j ( M[k][j] & b_j ).

#include "mastrovito/mastrovito_matrix.h"
#include "multipliers/generator.h"
#include "multipliers/product_layer.h"

#include <map>

namespace gfr::mult {

netlist::Netlist build_paar_mastrovito(const field::Field& field) {
    const int m = field.degree();
    const mastrovito::ReductionMatrix q{field.modulus()};
    const mastrovito::MastrovitoMatrix matrix{q};

    netlist::Netlist nl;
    ProductLayer pl{nl, m};

    // Distinct index subsets shared across all matrix entries.  The netlist's
    // structural hashing would deduplicate identical balanced trees anyway;
    // the cache just avoids rebuilding the leaf vectors.
    std::map<std::vector<int>, netlist::NodeId> asum_cache;
    auto a_sum = [&](const std::vector<int>& idx) {
        const auto it = asum_cache.find(idx);
        if (it != asum_cache.end()) {
            return it->second;
        }
        std::vector<netlist::NodeId> leaves;
        leaves.reserve(idx.size());
        for (const int i : idx) {
            leaves.push_back(pl.a(i));
        }
        const netlist::NodeId node = nl.make_xor_tree(leaves, netlist::TreeShape::Balanced);
        asum_cache.emplace(idx, node);
        return node;
    };

    for (int k = 0; k < m; ++k) {
        std::vector<netlist::NodeId> row;
        for (int j = 0; j < m; ++j) {
            const auto& entry = matrix.entry(k, j);
            if (entry.empty()) {
                continue;  // structurally-zero matrix cell
            }
            row.push_back(nl.make_and(a_sum(entry), pl.b(j)));
        }
        nl.add_output(coeff_name(k), nl.make_xor_tree(row, netlist::TreeShape::Balanced));
    }
    return nl;
}

}  // namespace gfr::mult
