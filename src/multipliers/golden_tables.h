#ifndef GFR_MULTIPLIERS_GOLDEN_TABLES_H
#define GFR_MULTIPLIERS_GOLDEN_TABLES_H

// Verbatim transcriptions of the paper's Tables I-IV for GF(2^8) with
// (m,n) = (8,2), plus a compiler from parsed coefficient equations to
// netlists.  These serve two purposes:
//
//   1. *Validating the paper*: each transcribed table is compiled and checked
//      for functional equivalence against reference field arithmetic, and its
//      stated complexity (e.g. Table III's T_A + 5T_X, 64 AND, 87 XOR) is
//      measured on the compiled netlist.
//   2. *Validating our generators*: the generator outputs must match the
//      golden tables term-for-term (Tables I/II/IV) or in delay profile
//      (Table III, whose exact hand pairing admits equivalent variants).

#include "field/gf2m.h"
#include "netlist/netlist.h"
#include "st/st_expr.h"

#include <string>
#include <vector>

namespace gfr::mult {

/// Table I: coefficients as whole S/T sums (flat-text notation, one equation
/// per line, exactly as printed in the paper).
const std::string& table1_text();

/// Table III: split terms with hard parenthesised restrictions.
const std::string& table3_text();

/// Table IV: the paper's proposal — split terms summed flat.
const std::string& table4_text();

/// Table II right-hand sides in our printer's notation, S-terms then T-terms
/// by (index, level): "S^0_1 = x0", ..., "T^0_6 = x7".
const std::vector<std::string>& table2_expected_lines();

/// The S_i/T_i listings of Section II ("S1 = x0", ..., "T6 = x7").
const std::vector<std::string>& section2_expected_st_lines();

/// The split decompositions quoted in Section II ("S1 = S^0_1", ...,
/// "T6 = T^0_6").
const std::vector<std::string>& section2_expected_split_lines();

/// Compile parsed coefficient equations into a netlist over `field`.
/// Parenthesised (binary) structure is preserved gate-for-gate; flat n-ary
/// sums are built with `nary_shape`.  Pair atoms (T^k_{i,j} / ST^k_{i,j})
/// resolve their operands with the level-fallback rule of
/// st::find_split_term.
netlist::Netlist compile_equations(const std::vector<st::CoeffEquation>& equations,
                                   const field::Field& field,
                                   netlist::TreeShape nary_shape);

/// Parse + compile the transcribed tables over GF(2^8), (m,n) = (8,2).
netlist::Netlist golden_table1_netlist();
netlist::Netlist golden_table3_netlist();
netlist::Netlist golden_table4_netlist();

}  // namespace gfr::mult

#endif  // GFR_MULTIPLIERS_GOLDEN_TABLES_H
