#ifndef GFR_MULTIPLIERS_SPECIAL_H
#define GFR_MULTIPLIERS_SPECIAL_H

// Companion bit-parallel operators that share the multipliers' substrate:
//
//   * squarer             — c = a^2 mod f.  Squaring over GF(2) is linear
//                           (a^2 = sum a_i x^(2i)), so the netlist is a pure
//                           XOR network; for the paper's pentanomials it is
//                           far cheaper than a general product.
//   * constant multiplier — c = B * a for a fixed field element B (used by
//                           Reed-Solomon encoders and point-multiplication
//                           ladders); also a pure XOR network with columns
//                           B*x^i mod f.
//   * modular reducer     — c = d mod f for a full double-length polynomial
//                           d (inputs d0..d(2m-2)); the second half of the
//                           classic two-step multiplication, exposed for
//                           verification and composition.
//
// All generators emit netlists with input a<i> (or d<i>) and output c<k>,
// matching the conventions of build_multiplier.

#include "field/gf2m.h"
#include "netlist/netlist.h"

namespace gfr::mult {

/// Bit-parallel squarer over the field's modulus.  XOR-only.
netlist::Netlist build_squarer(const field::Field& field);

/// Bit-parallel multiplier by the fixed element `constant`.  XOR-only.
/// Throws std::invalid_argument when `constant` is not a field element.
netlist::Netlist build_constant_multiplier(const field::Field& field,
                                           const field::Field::Element& constant);

/// Reduction network: inputs d0..d(2m-2) (a degree-(2m-2) polynomial),
/// outputs c0..c(m-1) = d mod f.  XOR-only.
netlist::Netlist build_reducer(const field::Field& field);

}  // namespace gfr::mult

#endif  // GFR_MULTIPLIERS_SPECIAL_H
