#ifndef GFR_MULTIPLIERS_KARATSUBA_H
#define GFR_MULTIPLIERS_KARATSUBA_H

// Karatsuba-Ofman bit-parallel multiplier: recursive three-way splitting of
// the polynomial product (subquadratic AND count, ~O(m^1.58)) followed by a
// Mastrovito-style reduction.  Not part of the paper's Table V, but the
// standard point of comparison for bit-parallel GF(2^m) multipliers and a
// natural extension of this library (the paper's schoolbook-based methods
// all pay m^2 AND gates).

#include "field/gf2m.h"
#include "netlist/netlist.h"

namespace gfr::mult {

struct KaratsubaOptions {
    /// Operand width at or below which the recursion falls back to the
    /// schoolbook convolution.  Small thresholds minimise AND gates at the
    /// cost of deeper XOR trees.
    int schoolbook_threshold = 8;
};

/// Bit-parallel Karatsuba multiplier netlist (inputs a0..,b0.., outputs c0..).
netlist::Netlist build_karatsuba(const field::Field& field,
                                 const KaratsubaOptions& options = {});

/// Number of AND gates Karatsuba needs for an n-bit polynomial product with
/// the given threshold.  Exact for power-of-two widths; an upper bound for
/// odd splits (structural hashing merges the boundary products that the
/// zero-padded middle operand shares with the high half).
long karatsuba_and_count(int n, int schoolbook_threshold);

}  // namespace gfr::mult

#endif  // GFR_MULTIPLIERS_KARATSUBA_H
