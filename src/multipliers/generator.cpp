#include "multipliers/generator.h"

#include <stdexcept>

namespace gfr::mult {

const std::vector<MethodInfo>& all_methods() {
    static const std::vector<MethodInfo> methods = {
        {Method::PaarMastrovito, "paar", "[2]",
         "Paar 1994: Mastrovito matrix with shared A-sums", true, false},
        {Method::RashidiDirect, "rashidi", "[8]",
         "Rashidi et al. 2015 (reconstruction): direct reduced-ANF trees", true, false},
        {Method::ReyhaniHasan, "reyhani", "[3]",
         "Reyhani-Masoleh & Hasan 2004 (reconstruction): x^i*B network", true, false},
        {Method::Imana2012, "imana2012", "[6]",
         "Imana 2012: monolithic S_i/T_i function trees", true, false},
        {Method::Imana2016Paren, "imana2016", "[7]",
         "Imana 2016: split terms with parenthesised same-level pairing", true, false},
        {Method::Date2018Flat, "date2018", "This work",
         "DATE 2018: flat split-term sums, restructuring left to synthesis", true, true},
        {Method::SchoolReduce, "school", "school",
         "naive two-step schoolbook multiply + chain reduction", false, false},
        {Method::Karatsuba, "karatsuba", "KOA",
         "Karatsuba-Ofman subquadratic product + Mastrovito reduction", false, false},
    };
    return methods;
}

const MethodInfo& method_info(Method method) {
    for (const auto& info : all_methods()) {
        if (info.method == method) {
            return info;
        }
    }
    throw std::invalid_argument{"method_info: unknown method"};
}

netlist::Netlist build_multiplier(Method method, const field::Field& field) {
    switch (method) {
        case Method::SchoolReduce:
            return build_school_reduce(field);
        case Method::PaarMastrovito:
            return build_paar_mastrovito(field);
        case Method::RashidiDirect:
            return build_rashidi_direct(field);
        case Method::ReyhaniHasan:
            return build_reyhani_hasan(field);
        case Method::Imana2012:
            return build_imana2012(field);
        case Method::Imana2016Paren:
            return build_imana2016_paren(field);
        case Method::Date2018Flat:
            return build_date2018_flat(field);
        case Method::Karatsuba:
            return build_karatsuba_default(field);
    }
    throw std::invalid_argument{"build_multiplier: unknown method"};
}

netlist::Netlist build_multiplier(Method method, const field::Field& field,
                                  Elaboration elaboration) {
    if (elaboration == Elaboration::Shared) {
        return build_multiplier(method, field);
    }
    if (method != Method::Date2018Flat) {
        throw std::invalid_argument{
            "build_multiplier: literal elaboration is only defined for the "
            "flat product family (Date2018Flat); the other architectures "
            "prescribe their sharing structure"};
    }
    return build_date2018_flat(field, elaboration);
}

}  // namespace gfr::mult
