// [3] Reyhani-Masoleh & Hasan reconstruction: the low-complexity polynomial
// basis multiplier built around the iterated operand  w_i = x^i * B mod f,
// with  c_k = XOR_i ( a_i & w_(i,k) ).
//
// Each step w_(i+1) = x * w_i mod f costs exactly weight(f)-2 XOR gates (3
// for a pentanomial), so the full network costs (m-1)*(w(f)-2) + m*(m-1)
// XORs — for (m,n)=(8,2): 21 + 56 = 77 XOR, the exact count the paper cites
// for [3]; the accumulated shift depth also reproduces its T_A + 7T_X delay.

#include "mastrovito/reduction_matrix.h"
#include "multipliers/generator.h"
#include "multipliers/product_layer.h"

namespace gfr::mult {

netlist::Netlist build_reyhani_hasan(const field::Field& field) {
    const int m = field.degree();

    netlist::Netlist nl;
    ProductLayer pl{nl, m};

    // Support of x^m mod f (the "feedback taps"); constant term always set
    // for an irreducible f.
    const mastrovito::ReductionMatrix q{field.modulus()};
    const auto taps = q.row_support(0);

    std::vector<netlist::NodeId> w(static_cast<std::size_t>(m));
    for (int k = 0; k < m; ++k) {
        w[static_cast<std::size_t>(k)] = pl.b(k);  // w_0 = B
    }

    std::vector<std::vector<netlist::NodeId>> col(static_cast<std::size_t>(m));
    for (int i = 0; i < m; ++i) {
        for (int k = 0; k < m; ++k) {
            col[static_cast<std::size_t>(k)].push_back(
                nl.make_and(pl.a(i), w[static_cast<std::size_t>(k)]));
        }
        if (i == m - 1) {
            break;  // w_m never used
        }
        // w_(i+1) = x * w_i mod f: shift up; the overflow bit w_(i, m-1)
        // feeds back into every tap position.
        const netlist::NodeId overflow = w[static_cast<std::size_t>(m - 1)];
        std::vector<netlist::NodeId> next(static_cast<std::size_t>(m));
        next[0] = nl.const0();
        for (int k = m - 1; k >= 1; --k) {
            next[static_cast<std::size_t>(k)] = w[static_cast<std::size_t>(k - 1)];
        }
        for (const int s : taps) {
            next[static_cast<std::size_t>(s)] =
                nl.make_xor(next[static_cast<std::size_t>(s)], overflow);
        }
        w = std::move(next);
    }

    for (int k = 0; k < m; ++k) {
        nl.add_output(coeff_name(k),
                      nl.make_xor_tree(col[static_cast<std::size_t>(k)],
                                       netlist::TreeShape::Balanced));
    }
    return nl;
}

}  // namespace gfr::mult
