#include "st/st_split.h"

#include <algorithm>
#include <stdexcept>

namespace gfr::st {

int SplitTerm::product_count() const {
    int total = 0;
    for (const auto& t : terms) {
        total += t.product_count();
    }
    return total;
}

std::string SplitTerm::label() const {
    return std::string{kind == StKind::S ? "S" : "T"} + "^" + std::to_string(level) +
           "_" + std::to_string(index);
}

std::vector<SplitTerm> split_function(const StFunction& f) {
    std::vector<SplitTerm> out;
    std::vector<Term> zs;
    zs.reserve(f.terms.size());
    for (const auto& t : f.terms) {
        if (t.is_square()) {
            out.push_back(SplitTerm{f.kind, f.index, 0, {t}});  // level-0 x term
        } else {
            zs.push_back(t);
        }
    }
    // Chunk z terms by the binary expansion of their count, LSB first.
    std::size_t pos = 0;
    const std::size_t nz = zs.size();
    for (int bit = 0; (std::size_t{1} << bit) <= nz; ++bit) {
        if ((nz >> bit) & 1U) {
            const std::size_t take = std::size_t{1} << bit;
            SplitTerm st{f.kind, f.index, bit + 1, {}};
            st.terms.assign(zs.begin() + static_cast<std::ptrdiff_t>(pos),
                            zs.begin() + static_cast<std::ptrdiff_t>(pos + take));
            pos += take;
            out.push_back(std::move(st));
        }
    }
    std::sort(out.begin(), out.end(),
              [](const SplitTerm& a, const SplitTerm& b) { return a.level < b.level; });
    return out;
}

SplitTables make_split_tables(int m) {
    SplitTables tables;
    tables.m = m;
    tables.s.reserve(static_cast<std::size_t>(m));
    for (int i = 1; i <= m; ++i) {
        tables.s.push_back(split_function(make_s(m, i)));
    }
    tables.t.reserve(static_cast<std::size_t>(m - 1));
    for (int i = 0; i <= m - 2; ++i) {
        tables.t.push_back(split_function(make_t(m, i)));
    }
    return tables;
}

const SplitTerm& find_split_term(const SplitTables& tables, StKind kind, int index,
                                 int level) {
    const auto& groups = (kind == StKind::S)
                             ? tables.s.at(static_cast<std::size_t>(index - 1))
                             : tables.t.at(static_cast<std::size_t>(index));
    const SplitTerm* best = nullptr;
    for (const auto& g : groups) {
        if (g.level == level) {
            return g;
        }
        if (g.level < level && (best == nullptr || g.level > best->level)) {
            best = &g;
        }
    }
    if (best == nullptr) {
        throw std::out_of_range{"find_split_term: no term at or below requested level"};
    }
    return *best;
}

std::string split_decomposition_string(const StFunction& f) {
    auto groups = split_function(f);
    std::sort(groups.begin(), groups.end(),
              [](const SplitTerm& a, const SplitTerm& b) { return a.level > b.level; });
    std::string out = f.name() + " = ";
    for (std::size_t i = 0; i < groups.size(); ++i) {
        if (i > 0) {
            out += " + ";
        }
        out += groups[i].label();
    }
    return out;
}

std::string split_term_definition_string(const SplitTerm& st) {
    std::string rhs;
    for (std::size_t i = 0; i < st.terms.size(); ++i) {
        if (i > 0) {
            rhs += " + ";
        }
        rhs += term_to_paper_string(st.terms[i]);
    }
    if (st.terms.size() > 1) {
        rhs = "(" + rhs + ")";
    }
    return st.label() + " = " + rhs;
}

}  // namespace gfr::st
