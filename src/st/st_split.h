#ifndef GFR_ST_ST_SPLIT_H
#define GFR_ST_ST_SPLIT_H

// The splitting of S_i / T_i into S^j_i / T^j_i terms ([7], reproduced in the
// paper's Table II for GF(2^8)).
//
// Each split term groups exactly 2^j elementary products, so it can be built
// as a *complete* j-level binary XOR tree.  The paper's grouping rule (read
// off Table II and [7]):
//   - the x term (1 product), when present, becomes the level-0 term;
//   - the z terms (2 products each) are taken in listing order and chunked
//     by the binary expansion of their count, least-significant bit first:
//     bit k set -> the next 2^k z-terms form the level-(k+1) term.
// E.g. S6 (3 z-terms) -> S^1_6 = z^5_0, S^2_6 = (z^4_1 + z^3_2).

#include "st/st_terms.h"

#include <vector>

namespace gfr::st {

/// One S^j_i or T^j_i: a complete 2^level-product group.
struct SplitTerm {
    StKind kind = StKind::S;
    int index = 0;   ///< the i of S_i / T_i
    int level = 0;   ///< the j: 2^j products, j-level complete XOR tree
    std::vector<Term> terms;

    /// Number of products: always exactly 2^level (library invariant).
    [[nodiscard]] int product_count() const;

    /// "S^2_4" (paper superscript/subscript notation).
    [[nodiscard]] std::string label() const;
};

/// Split a function per the paper's rule.  The result is ordered by
/// ascending level; the union of all groups equals the original term list.
std::vector<SplitTerm> split_function(const StFunction& f);

/// All split terms of all S_1..S_m and T_0..T_(m-2) for degree m, in the
/// order (S by index, then T by index).  Convenience for generators/tables.
struct SplitTables {
    int m = 0;
    std::vector<std::vector<SplitTerm>> s;  // s[i-1] = splits of S_i
    std::vector<std::vector<SplitTerm>> t;  // t[i]   = splits of T_i
};
SplitTables make_split_tables(int m);

/// Lookup: the split term of the given kind/index with exactly `level`, or,
/// when absent, the term with the highest level strictly below `level`
/// (the fallback used by the paper's pair notation, e.g. T^2_{5,6} pairs
/// T^1_5 with T^0_6).  Throws std::out_of_range when nothing qualifies.
const SplitTerm& find_split_term(const SplitTables& tables, StKind kind, int index,
                                 int level);

/// "S4 = S^2_4" / "T0 = T^2_0 + T^1_0 + T^0_0" — descending level, the
/// paper's presentation order.
std::string split_decomposition_string(const StFunction& f);

/// "S^2_4 = (z^3_0 + z^2_1)" — the Table II right-hand sides.
std::string split_term_definition_string(const SplitTerm& st);

}  // namespace gfr::st

#endif  // GFR_ST_ST_SPLIT_H
