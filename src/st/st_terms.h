#ifndef GFR_ST_ST_TERMS_H
#define GFR_ST_ST_TERMS_H

// The S_i / T_i functions of the paper ([6], eq. (1)).
//
// For A, B in GF(2^m) with coordinates a_i, b_i, the degree-(2m-2) product
// polynomial D = A*B has coefficients d_k built from:
//     x_k   = a_k * b_k                       ("square" product)
//     z^j_i = a_i * b_j + a_j * b_i  (i < j)  ("cross" pair, 2 products)
// The paper names the low half S_i = d_(i-1) (1 <= i <= m) and the high half
// T_i = d_(m+i) (0 <= i <= m-2), and gives the closed form (1) for both.
//
// We implement BOTH the closed form and the direct convolution; the test
// suite checks they agree for every m, which validates our transcription of
// eq. (1) against first principles.

#include <compare>
#include <string>
#include <vector>

namespace gfr::st {

/// One additive term of an S/T function.  lo == hi encodes the square term
/// x_lo = a_lo*b_lo (one AND); lo < hi encodes z^hi_lo = a_lo*b_hi + a_hi*b_lo
/// (two ANDs + one XOR).
struct Term {
    int lo = 0;
    int hi = 0;

    [[nodiscard]] bool is_square() const noexcept { return lo == hi; }
    [[nodiscard]] int product_count() const noexcept { return is_square() ? 1 : 2; }

    friend auto operator<=>(const Term&, const Term&) = default;
};

enum class StKind : std::uint8_t { S, T };

/// An S_i or T_i function: an XOR-sum of Terms, in the paper's listing order
/// (the x term first when present, then z terms by ascending lower index).
struct StFunction {
    StKind kind = StKind::S;
    int index = 0;
    int m = 0;
    std::vector<Term> terms;

    /// Total number of elementary AND products summed by this function.
    [[nodiscard]] int product_count() const;

    /// "S7" / "T4".
    [[nodiscard]] std::string name() const;
};

/// S_i per eq. (1).  Requires 1 <= i <= m.
StFunction make_s(int m, int i);

/// T_i per eq. (1).  Requires 0 <= i <= m-2.
StFunction make_t(int m, int i);

/// S_i derived directly as the convolution coefficient d_(i-1).
StFunction make_s_convolution(int m, int i);

/// T_i derived directly as the convolution coefficient d_(m+i).
StFunction make_t_convolution(int m, int i);

/// "x3" or "z^6_0" — the notation used throughout the paper.
std::string term_to_paper_string(const Term& t);

/// "S7 = x3 + z^6_0 + z^5_1 + z^4_2".
std::string to_paper_string(const StFunction& f);

/// True iff the two functions contain the same multiset of terms
/// (order-insensitive; used to compare eq. (1) against the convolution).
bool same_terms(const StFunction& lhs, const StFunction& rhs);

}  // namespace gfr::st

#endif  // GFR_ST_ST_TERMS_H
