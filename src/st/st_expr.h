#ifndef GFR_ST_ST_EXPR_H
#define GFR_ST_ST_EXPR_H

// Coefficient-equation expression trees plus a parser/printer for the
// paper's compact notation, used to transcribe Tables I, III and IV verbatim
// and compile them to netlists (src/multipliers/golden_tables).
//
// Notation (flat-text forms as they appear in the paper body):
//   "S1", "T0"      whole functions (Table I)
//   "S01"           S^0_1   split term: first digit = level, rest = index
//   "T20,4"         T^2_{0,4} = T^1_0 + T^1_4       (pair combination)
//   "ST22,1"        ST^2_{2,1} = S^1_2 + T^1_1      (mixed pair)
// Pair combinations use the *fallback* rule for the operand level: when the
// exact level k-1 does not exist for that function, the highest available
// level below it is taken (the paper's T^2_{5,6} pairs T^1_5 with T^0_6).
//
// Parenthesised sums parse to nested binary XOR nodes (structure preserved —
// this is what "hard restrictions" means in the paper); flat sums parse to
// one n-ary XOR node (structure left to the synthesiser).

#include "st/st_split.h"

#include <optional>
#include <string>
#include <vector>

namespace gfr::st {

/// One identifier in a coefficient equation.
struct Atom {
    enum class Kind : std::uint8_t { WholeS, WholeT, SplitS, SplitT, PairTT, PairST };

    Kind kind = Kind::WholeS;
    int level = -1;  ///< split level / pair result level; -1 for whole functions
    int i = -1;      ///< primary index (the S index for PairST)
    int j = -1;      ///< secondary index for pair kinds; -1 otherwise

    /// Pretty form: "S1", "S^0_1", "T^2_{0,4}", "ST^2_{2,1}".
    [[nodiscard]] std::string to_string() const;

    friend bool operator==(const Atom&, const Atom&) = default;
};

/// Leaf (atom set) or XOR node (children; size >= 2).
struct Expr {
    std::optional<Atom> atom;
    std::vector<Expr> children;

    [[nodiscard]] bool is_leaf() const noexcept { return atom.has_value(); }

    static Expr leaf(Atom a);
    static Expr sum(std::vector<Expr> operands);

    /// Pretty form with parentheses exactly where nesting occurs, e.g.
    /// "((S^0_1 + T^1_{0,4}) + T^2_0) + (T^2_{0,4} + T^2_{5,6})".
    [[nodiscard]] std::string to_string() const;

    /// All atoms in the expression, left-to-right.
    [[nodiscard]] std::vector<Atom> atoms() const;
};

/// "c_k = expr".
struct CoeffEquation {
    int k = 0;
    Expr expr;

    [[nodiscard]] std::string to_string() const;  // "c0 = ..."
};

enum class ParseMode : std::uint8_t {
    WholeFunctions,  ///< "S1"/"T0" identifiers (Table I)
    SplitTerms,      ///< "S01"/"T20,4"/"ST22,1" identifiers (Tables III/IV)
};

/// Parse one line like "c0 = S1 +T0 +T4 +T5 +T6;".  Throws
/// std::invalid_argument with a position hint on malformed input.
CoeffEquation parse_coefficient_line(const std::string& line, ParseMode mode);

/// Parse a multi-line table (one equation per non-empty line).
std::vector<CoeffEquation> parse_coefficient_table(const std::string& text,
                                                   ParseMode mode);

}  // namespace gfr::st

#endif  // GFR_ST_ST_EXPR_H
