#include "st/complexity.h"

#include "mastrovito/reduction_matrix.h"
#include "st/st_split.h"

#include <algorithm>
#include <queue>
#include <set>

namespace gfr::st {

SplitMethodComplexity split_method_complexity(const gf2::Poly& f) {
    const int m = f.degree();
    const mastrovito::ReductionMatrix q{f};
    const SplitTables tables = make_split_tables(m);

    SplitMethodComplexity out;
    out.m = m;
    out.and_gates = m * m;

    // Every split group is one complete tree, built once and shared.
    for (const auto& groups : {std::cref(tables.s), std::cref(tables.t)}) {
        for (const auto& splits : groups.get()) {
            for (const auto& sp : splits) {
                out.group_xor += (1 << sp.level) - 1;
            }
        }
    }

    // Per coefficient: the levels of the groups feeding it.
    for (int k = 0; k < m; ++k) {
        std::vector<int> levels;
        for (const auto& sp : tables.s[static_cast<std::size_t>(k)]) {
            levels.push_back(sp.level);
        }
        for (const int i : q.t_indices_for_coefficient(k)) {
            for (const auto& sp : tables.t[static_cast<std::size_t>(i)]) {
                levels.push_back(sp.level);
            }
        }
        out.terms_per_coefficient.push_back(static_cast<int>(levels.size()));
        out.combine_xor_flat += static_cast<int>(levels.size()) - 1;

        // Huffman on max-plus-one: the depth the parenthesised pairing of
        // [7] achieves for this coefficient.
        std::priority_queue<int, std::vector<int>, std::greater<>> heap{
            std::greater<>{}, levels};
        while (heap.size() > 1) {
            const int a = heap.top();
            heap.pop();
            const int b = heap.top();
            heap.pop();
            heap.push(std::max(a, b) + 1);
        }
        out.depth_paren = std::max(out.depth_paren, heap.top());
    }
    out.total_xor_flat = out.group_xor + out.combine_xor_flat;
    return out;
}

}  // namespace gfr::st
