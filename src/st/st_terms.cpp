#include "st/st_terms.h"

#include <algorithm>
#include <stdexcept>

namespace gfr::st {

int StFunction::product_count() const {
    int total = 0;
    for (const auto& t : terms) {
        total += t.product_count();
    }
    return total;
}

std::string StFunction::name() const {
    return (kind == StKind::S ? "S" : "T") + std::to_string(index);
}

StFunction make_s(int m, int i) {
    if (m < 2 || i < 1 || i > m) {
        throw std::invalid_argument{"make_s: requires 2 <= m and 1 <= i <= m"};
    }
    StFunction f{StKind::S, i, m, {}};
    const int p = i / 2;
    if (i % 2 == 1) {
        f.terms.push_back(Term{p, p});  // x_p appears only for odd i
    }
    for (int h = 0; h <= p - 1; ++h) {
        f.terms.push_back(Term{h, i - h - 1});  // z^(i-h-1)_h
    }
    return f;
}

StFunction make_t(int m, int i) {
    if (m < 2 || i < 0 || i > m - 2) {
        throw std::invalid_argument{"make_t: requires 0 <= i <= m-2"};
    }
    StFunction f{StKind::T, i, m, {}};
    const int half_up = (m + 1) / 2;  // ceil(m/2)
    const int q = half_up + i / 2;
    const bool same_parity = (m % 2) == (i % 2);
    int r = 0;
    if (same_parity) {
        f.terms.push_back(Term{q, q});  // x_q appears only when m,i share parity
        r = q;
    } else {
        r = half_up + (i + 1) / 2;  // ceil(m/2) + ceil(i/2)
    }
    for (int j = 1; j <= r - (i + 1); ++j) {
        f.terms.push_back(Term{i + j, m - j});  // z^(m-j)_(i+j)
    }
    return f;
}

namespace {

/// Convolution coefficient d_k of A*B for GF(2^m) coordinates: all products
/// a_lo * b_hi with lo + hi = k and both indices in [0, m-1], folded into
/// square/cross Terms.  The x term (if any) leads, matching eq. (1) order.
std::vector<Term> convolution_terms(int m, int k) {
    std::vector<Term> out;
    if (k % 2 == 0 && k / 2 <= m - 1) {
        out.push_back(Term{k / 2, k / 2});
    }
    const int lo_min = std::max(0, k - (m - 1));
    for (int lo = lo_min; 2 * lo < k; ++lo) {
        out.push_back(Term{lo, k - lo});
    }
    return out;
}

}  // namespace

StFunction make_s_convolution(int m, int i) {
    if (m < 2 || i < 1 || i > m) {
        throw std::invalid_argument{"make_s_convolution: requires 1 <= i <= m"};
    }
    return StFunction{StKind::S, i, m, convolution_terms(m, i - 1)};
}

StFunction make_t_convolution(int m, int i) {
    if (m < 2 || i < 0 || i > m - 2) {
        throw std::invalid_argument{"make_t_convolution: requires 0 <= i <= m-2"};
    }
    return StFunction{StKind::T, i, m, convolution_terms(m, m + i)};
}

std::string term_to_paper_string(const Term& t) {
    if (t.is_square()) {
        return "x" + std::to_string(t.lo);
    }
    return "z^" + std::to_string(t.hi) + "_" + std::to_string(t.lo);
}

std::string to_paper_string(const StFunction& f) {
    std::string out = f.name() + " = ";
    if (f.terms.empty()) {
        return out + "0";
    }
    for (std::size_t i = 0; i < f.terms.size(); ++i) {
        if (i > 0) {
            out += " + ";
        }
        out += term_to_paper_string(f.terms[i]);
    }
    return out;
}

bool same_terms(const StFunction& lhs, const StFunction& rhs) {
    auto a = lhs.terms;
    auto b = rhs.terms;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    return a == b;
}

}  // namespace gfr::st
