#include "st/st_expr.h"

#include <cctype>
#include <stdexcept>

namespace gfr::st {

std::string Atom::to_string() const {
    switch (kind) {
        case Kind::WholeS:
            return "S" + std::to_string(i);
        case Kind::WholeT:
            return "T" + std::to_string(i);
        case Kind::SplitS:
            return "S^" + std::to_string(level) + "_" + std::to_string(i);
        case Kind::SplitT:
            return "T^" + std::to_string(level) + "_" + std::to_string(i);
        case Kind::PairTT:
            return "T^" + std::to_string(level) + "_{" + std::to_string(i) + "," +
                   std::to_string(j) + "}";
        case Kind::PairST:
            return "ST^" + std::to_string(level) + "_{" + std::to_string(i) + "," +
                   std::to_string(j) + "}";
    }
    return "?";
}

Expr Expr::leaf(Atom a) {
    Expr e;
    e.atom = a;
    return e;
}

Expr Expr::sum(std::vector<Expr> operands) {
    if (operands.empty()) {
        throw std::invalid_argument{"Expr::sum: empty operand list"};
    }
    if (operands.size() == 1) {
        return std::move(operands[0]);
    }
    Expr e;
    e.children = std::move(operands);
    return e;
}

std::string Expr::to_string() const {
    if (is_leaf()) {
        return atom->to_string();
    }
    std::string out;
    for (std::size_t i = 0; i < children.size(); ++i) {
        if (i > 0) {
            out += " + ";
        }
        const auto& c = children[i];
        out += c.is_leaf() ? c.to_string() : "(" + c.to_string() + ")";
    }
    return out;
}

std::vector<Atom> Expr::atoms() const {
    std::vector<Atom> out;
    if (is_leaf()) {
        out.push_back(*atom);
        return out;
    }
    for (const auto& c : children) {
        const auto sub = c.atoms();
        out.insert(out.end(), sub.begin(), sub.end());
    }
    return out;
}

std::string CoeffEquation::to_string() const {
    return "c" + std::to_string(k) + " = " + expr.to_string();
}

namespace {

class Parser {
public:
    Parser(const std::string& text, ParseMode mode) : text_{text}, mode_{mode} {}

    CoeffEquation parse_line() {
        skip_ws();
        expect('c');
        CoeffEquation eq;
        eq.k = read_int();
        skip_ws();
        expect('=');
        eq.expr = parse_sum();
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == ';') {
            ++pos_;
        }
        skip_ws();
        if (pos_ != text_.size()) {
            fail("trailing characters");
        }
        return eq;
    }

private:
    [[noreturn]] void fail(const std::string& why) const {
        throw std::invalid_argument{"parse error at position " + std::to_string(pos_) +
                                    " ('" + text_ + "'): " + why};
    }

    void skip_ws() {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
            ++pos_;
        }
    }

    void expect(char c) {
        if (pos_ >= text_.size() || text_[pos_] != c) {
            fail(std::string{"expected '"} + c + "'");
        }
        ++pos_;
    }

    int read_int() {
        if (pos_ >= text_.size() || std::isdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
            fail("expected digit");
        }
        int value = 0;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
            value = value * 10 + (text_[pos_] - '0');
            ++pos_;
        }
        return value;
    }

    Expr parse_sum() {
        std::vector<Expr> operands;
        operands.push_back(parse_operand());
        while (true) {
            skip_ws();
            if (pos_ < text_.size() && text_[pos_] == '+') {
                ++pos_;
                operands.push_back(parse_operand());
            } else {
                break;
            }
        }
        return Expr::sum(std::move(operands));
    }

    Expr parse_operand() {
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == '(') {
            ++pos_;
            Expr inner = parse_sum();
            skip_ws();
            expect(')');
            return inner;
        }
        return Expr::leaf(parse_atom());
    }

    Atom parse_atom() {
        skip_ws();
        std::string letters;
        while (pos_ < text_.size() && std::isupper(static_cast<unsigned char>(text_[pos_])) != 0) {
            letters += text_[pos_];
            ++pos_;
        }
        if (letters != "S" && letters != "T" && letters != "ST") {
            fail("expected identifier S/T/ST, got '" + letters + "'");
        }
        if (mode_ == ParseMode::WholeFunctions) {
            if (letters == "ST") {
                fail("ST pair in whole-function table");
            }
            Atom a;
            a.kind = (letters == "S") ? Atom::Kind::WholeS : Atom::Kind::WholeT;
            a.i = read_int();
            return a;
        }
        // Split mode: first digit is the level, remaining digits the index.
        if (pos_ >= text_.size() || std::isdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
            fail("expected level digit");
        }
        Atom a;
        a.level = text_[pos_] - '0';
        ++pos_;
        a.i = read_int();
        if (pos_ < text_.size() && text_[pos_] == ',') {
            ++pos_;
            a.j = read_int();
            a.kind = (letters == "ST") ? Atom::Kind::PairST : Atom::Kind::PairTT;
            if (letters == "S") {
                fail("pair notation with plain S is not used by the paper");
            }
        } else {
            if (letters == "ST") {
                fail("ST atom requires a pair of indices");
            }
            a.kind = (letters == "S") ? Atom::Kind::SplitS : Atom::Kind::SplitT;
        }
        return a;
    }

    const std::string& text_;
    ParseMode mode_;
    std::size_t pos_ = 0;
};

}  // namespace

CoeffEquation parse_coefficient_line(const std::string& line, ParseMode mode) {
    Parser parser{line, mode};
    return parser.parse_line();
}

std::vector<CoeffEquation> parse_coefficient_table(const std::string& text,
                                                   ParseMode mode) {
    std::vector<CoeffEquation> out;
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t end = text.find('\n', start);
        if (end == std::string::npos) {
            end = text.size();
        }
        std::string line = text.substr(start, end - start);
        bool blank = true;
        for (const char c : line) {
            if (std::isspace(static_cast<unsigned char>(c)) == 0) {
                blank = false;
                break;
            }
        }
        if (!blank) {
            out.push_back(parse_coefficient_line(line, mode));
        }
        if (end == text.size()) {
            break;
        }
        start = end + 1;
    }
    return out;
}

}  // namespace gfr::st
