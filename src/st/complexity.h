#ifndef GFR_ST_COMPLEXITY_H
#define GFR_ST_COMPLEXITY_H

// Theoretical complexity of the split-term construction ([7] / the paper's
// Table IV form), computed symbolically from the split tables and reduction
// matrix — no netlist involved.  The test suite checks the *generated*
// netlists against these predictions on every Table V field, which pins the
// generators to the theory the paper builds on:
//
//   AND gates            m^2                       (all partial products)
//   XOR inside groups    sum over groups (2^j - 1) (complete binary trees)
//   XOR combining terms  sum over outputs (#terms_k - 1)
//   depth (flat form)    T_A + max_k ( depth of a Huffman tree over the
//                        group levels feeding c_k )   [= the paper's
//                        T_A + 5 T_X at (m,n) = (8,2)]

#include "gf2/gf2_poly.h"

#include <vector>

namespace gfr::st {

struct SplitMethodComplexity {
    int m = 0;
    int and_gates = 0;          ///< m^2
    int group_xor = 0;          ///< XORs inside all split-term trees (shared once)
    int combine_xor_flat = 0;   ///< XORs to sum each coefficient's terms
    int total_xor_flat = 0;     ///< group_xor + combine_xor_flat
    int depth_paren = 0;        ///< XOR depth with level-aware pairing ([7])
    std::vector<int> terms_per_coefficient;  ///< split terms feeding each c_k
};

/// Symbolic complexity of the split method over the field defined by `f`
/// (any irreducible polynomial; the paper instantiates type II pentanomials).
SplitMethodComplexity split_method_complexity(const gf2::Poly& f);

}  // namespace gfr::st

#endif  // GFR_ST_COMPLEXITY_H
