#include "acv/anf.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <unordered_set>

namespace gfr::acv {

using netlist::GateKind;
using netlist::kInvalidNode;
using netlist::Node;
using netlist::NodeId;

namespace {

/// Sort and cancel mod 2 in place: monomials appearing an even number of
/// times vanish, odd survivors are kept once.
void cancel_mod2(std::vector<Monomial>& monomials) {
    std::sort(monomials.begin(), monomials.end());
    std::size_t kept = 0;
    std::size_t i = 0;
    while (i < monomials.size()) {
        std::size_t j = i + 1;
        while (j < monomials.size() && monomials[j] == monomials[i]) {
            ++j;
        }
        if ((j - i) % 2 != 0) {
            monomials[kept++] = monomials[i];
        }
        i = j;
    }
    monomials.resize(kept);
}

}  // namespace

bool ColumnExpander::emit(const Monomial& mono, std::vector<Monomial>& out) {
    // Classify: a Const0 variable zeroes the whole product; otherwise the
    // monomial is finished iff every variable is a primary input.
    NodeId best = kInvalidNode;
    for (int i = 0; i < mono.count; ++i) {
        const NodeId v = mono.vars[static_cast<std::size_t>(i)];
        const GateKind kind = nl_->node(v).kind;
        if (kind == GateKind::Const0) {
            return true;  // x * 0 = 0 — the monomial cancels outright
        }
        if (kind != GateKind::Input && (best == kInvalidNode || v > best)) {
            best = v;
        }
    }
    if (live_ + out.size() + 1 > cap_) {
        return false;
    }
    if (best == kInvalidNode) {
        out.push_back(mono);
    } else {
        if (buckets_[best].empty()) {
            touched_.push_back(best);
        }
        buckets_[best].push_back(mono);
        ++live_;
    }
    if (live_ + out.size() > stats_.peak_monomials) {
        stats_.peak_monomials = live_ + out.size();
    }
    return true;
}

ColumnExpander::Status ColumnExpander::expand(NodeId root,
                                              std::size_t max_monomials,
                                              std::vector<Monomial>& out,
                                              Stats* stats) {
    if (root >= nl_->node_count()) {
        throw std::out_of_range{"ColumnExpander: root node " +
                                std::to_string(root) + " out of range"};
    }
    if (buckets_.size() < nl_->node_count()) {
        buckets_.resize(nl_->node_count());
    }
    // A prior aborted expansion may have left monomials behind.
    for (const NodeId id : touched_) {
        buckets_[id].clear();
    }
    touched_.clear();
    out.clear();
    live_ = 0;
    cap_ = max_monomials;
    stats_ = {};

    Monomial seed;
    seed.insert(root);
    Status status = emit(seed, out) ? Status::Ok : Status::MonomialCap;

    // Reverse-topological substitution: every emission targets a strictly
    // smaller gate id (fanins precede their gate), so one descending scan
    // from the root expands each gate exactly once.
    for (NodeId id = root + 1; status == Status::Ok && id-- > 0;) {
        std::vector<Monomial>& bucket = buckets_[id];
        if (bucket.empty()) {
            continue;
        }
        work_.clear();
        std::swap(work_, bucket);  // capacities circulate instead of churning
        live_ -= work_.size();
        // Mod-2 cancellation before expanding: identical monomials always
        // share this maximal gate variable, so this per-bucket pass is
        // exhaustive for monomials still carrying gate variables.
        cancel_mod2(work_);
        const Node& nd = nl_->node(id);
        for (Monomial& mono : work_) {
            ++stats_.expansion_events;
            int pos = 0;
            while (mono.vars[static_cast<std::size_t>(pos)] != id) {
                ++pos;
            }
            mono.erase_at(pos);
            if (nd.kind == GateKind::And2) {
                // g = a AND b: the monomial absorbs both fanins (product).
                if (!mono.insert(nd.a) || !mono.insert(nd.b)) {
                    status = Status::DegreeCap;
                    break;
                }
                if (!emit(mono, out)) {
                    status = Status::MonomialCap;
                    break;
                }
            } else {
                // g = a XOR b: the monomial splits into two (sum).
                Monomial twin = mono;
                if (!mono.insert(nd.a) || !twin.insert(nd.b)) {
                    status = Status::DegreeCap;
                    break;
                }
                if (!emit(mono, out) || !emit(twin, out)) {
                    status = Status::MonomialCap;
                    break;
                }
            }
        }
    }

    if (status != Status::Ok) {
        // Leave the expander reusable: record how far it got, drop the rest.
        for (const NodeId id : touched_) {
            buckets_[id].clear();
        }
        touched_.clear();
        live_ = 0;
        if (stats != nullptr) {
            *stats = stats_;
        }
        return status;
    }
    // Input-only monomials from distinct gate paths can still collide; one
    // final cancellation yields the canonical (sorted, duplicate-free) ANF.
    cancel_mod2(out);
    if (stats != nullptr) {
        *stats = stats_;
    }
    return Status::Ok;
}

SpecTable multiplier_spec(const gf2::Poly& modulus,
                          std::span<const NodeId> a_nodes,
                          std::span<const NodeId> b_nodes) {
    const int m = modulus.degree();
    if (m < 2) {
        throw std::invalid_argument{"multiplier_spec: modulus degree must be >= 2"};
    }
    if (static_cast<int>(a_nodes.size()) != m ||
        static_cast<int>(b_nodes.size()) != m) {
        throw std::invalid_argument{"multiplier_spec: need m nodes per operand"};
    }
    std::unordered_set<NodeId> distinct;
    for (const NodeId v : a_nodes) {
        distinct.insert(v);
    }
    for (const NodeId v : b_nodes) {
        distinct.insert(v);
    }
    if (distinct.size() != static_cast<std::size_t>(2 * m)) {
        throw std::invalid_argument{"multiplier_spec: operand nodes must be distinct"};
    }

    SpecTable spec;
    spec.columns.resize(static_cast<std::size_t>(m));
    // Walk x^s mod f for s = 0..2m-2: after one shift the degree is at most
    // m, so reduction is a single conditional XOR of f.
    gf2::Poly xs = gf2::Poly::one();
    for (int s = 0; s <= 2 * m - 2; ++s) {
        if (s > 0) {
            gf2::Poly shifted = xs << 1;
            if (shifted.coeff(m)) {
                shifted += modulus;
            }
            xs = shifted;
        }
        const int lo = s - (m - 1) > 0 ? s - (m - 1) : 0;
        const int hi = s < m - 1 ? s : m - 1;
        for (const int k : xs.support()) {
            auto& column = spec.columns[static_cast<std::size_t>(k)];
            for (int i = lo; i <= hi; ++i) {
                column.push_back(Monomial::pair(
                    a_nodes[static_cast<std::size_t>(i)],
                    b_nodes[static_cast<std::size_t>(s - i)]));
            }
        }
    }
    for (auto& column : spec.columns) {
        std::sort(column.begin(), column.end());
        spec.total_monomials += column.size();
    }
    return spec;
}

}  // namespace gfr::acv
