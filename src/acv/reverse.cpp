// reverse_engineer: recover the word-level spec of an anonymous GF(2^m)
// multiplier from nothing but its gates.
//
// The recovery leans entirely on structure the ANF extraction makes
// explicit.  For a genuine multiplier C = A*B mod f:
//
//   1. every output ANF is a pure bilinear form: each monomial is a product
//      of exactly two inputs, one from each operand;
//   2. the pair graph (inputs adjacent iff some a_i*b_j monomial joins them)
//      is complete bipartite — x^(i+j) mod f is never zero — so 2-coloring
//      it separates the operands;
//   3. a pair (a_i, b_j) appears in exactly the output columns of
//      x^(i+j) mod f.  For s = i+j < m that is the single column s, and
//      column s collects exactly s+1 such singleton-support pairs — the
//      counts 1..m identify the output bit order outright;
//   4. the unique singleton pair of column 0 is (a_0, b_0); pairing every
//      other A-side input against b_0 (and B-side against a_0) indexes the
//      operand bits; and the column support of the pair (a_1, b_(m-1)) is
//      literally the support of x^m mod f — i.e. f itself.
//
// The recovered f must pass the repo's irreducibility tooling, and the full
// extracted ANF must match multiplier_spec(f) exactly, before success is
// reported — a wrong guess can only ever yield a clean rejection.  The
// identification in step 3 assumes x^s mod f hits no monomial for
// m <= s <= 2m-2 (true whenever ord(x) > 2m-2, which holds for every
// catalog field); a pathological modulus outside that regime fails the
// final re-verification and is rejected, never mis-recovered.

#include "acv/acv.h"

#include "gf2/irreducibility.h"
#include "gf2/pentanomial.h"
#include "verify/campaign.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <numeric>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace gfr::acv {

using netlist::GateKind;
using netlist::kInvalidNode;
using netlist::Netlist;
using netlist::Node;
using netlist::NodeId;

namespace {

/// Gate-for-gate rebuild with reordered, renamed ports.  Fresh (non-interned)
/// gates keep the structure verbatim — stats() of source and result match.
Netlist rebuild_with_ports(
    const Netlist& src, std::span<const int> input_order,
    const std::function<std::string(int)>& input_name,
    std::span<const int> output_order,
    const std::function<std::string(int)>& output_name) {
    Netlist dst;
    std::vector<NodeId> map(src.node_count(), kInvalidNode);
    for (std::size_t p = 0; p < input_order.size(); ++p) {
        const auto& port =
            src.inputs()[static_cast<std::size_t>(input_order[p])];
        map[port.node] = dst.add_input(input_name(static_cast<int>(p)));
    }
    for (NodeId id = 0; id < src.node_count(); ++id) {
        const Node& nd = src.node(id);
        switch (nd.kind) {
            case GateKind::Input:
                break;  // placed above, in the requested port order
            case GateKind::Const0:
                map[id] = dst.const0();
                break;
            case GateKind::And2:
                map[id] = dst.make_and_fresh(map[nd.a], map[nd.b]);
                break;
            case GateKind::Xor2:
                map[id] = dst.make_xor_fresh(map[nd.a], map[nd.b]);
                break;
        }
    }
    for (std::size_t p = 0; p < output_order.size(); ++p) {
        const auto& port =
            src.outputs()[static_cast<std::size_t>(output_order[p])];
        dst.add_output(output_name(static_cast<int>(p)), map[port.node]);
    }
    return dst;
}

ReverseResult reject(std::string why) {
    ReverseResult result;
    result.reason = "not a GF(2^m) multiplier: " + std::move(why);
    return result;
}

/// Label f against the paper's low-weight families.
std::string family_label(const gf2::Poly& f) {
    const std::vector<int> support = f.support();  // ascending
    const int m = f.degree();
    if (support.size() == 3 && support[0] == 0) {
        return "trinomial k=" + std::to_string(support[1]);
    }
    if (support.size() == 5 && support[0] == 0) {
        const int n2 = support[1];
        if (support[2] == n2 + 1 && support[3] == n2 + 2 &&
            gf2::TypeIIPentanomial::valid_parameters(m, n2)) {
            return "type II pentanomial (" + std::to_string(m) + ", " +
                   std::to_string(n2) + ")";
        }
        if (support[1] == 1 && support[3] == support[2] + 1 &&
            gf2::TypeIPentanomial::valid_parameters(m, support[2])) {
            return "type I pentanomial (" + std::to_string(m) + ", " +
                   std::to_string(support[2]) + ")";
        }
    }
    return "";
}

}  // namespace

std::string RecoveredSpec::to_string() const {
    std::string out = "GF(2^" + std::to_string(m) +
                      ") multiplier: f = " + modulus.to_string();
    if (!modulus_family.empty()) {
        out += " (" + modulus_family + ")";
    }
    return out;
}

ReverseResult reverse_engineer(const Netlist& nl,
                               const ReverseOptions& options) {
    const int m = static_cast<int>(nl.outputs().size());
    const int n_in = static_cast<int>(nl.inputs().size());
    if (m < 2 || n_in != 2 * m) {
        return reject("port shape is not 2m inputs / m outputs (got " +
                      std::to_string(n_in) + "/" + std::to_string(m) + ")");
    }

    // 1. Canonical ANF of every output.
    ColumnExpander expander{nl};
    std::vector<std::vector<Monomial>> anf(static_cast<std::size_t>(m));
    for (int o = 0; o < m; ++o) {
        const auto status =
            expander.expand(nl.outputs()[static_cast<std::size_t>(o)].node,
                            options.max_monomials,
                            anf[static_cast<std::size_t>(o)]);
        if (status != ColumnExpander::Status::Ok) {
            return reject("output '" + nl.outputs()[static_cast<std::size_t>(o)].name +
                          "' exceeded the ANF expansion cap");
        }
        if (anf[static_cast<std::size_t>(o)].empty()) {
            return reject("output '" +
                          nl.outputs()[static_cast<std::size_t>(o)].name +
                          "' is constant 0");
        }
    }

    // 2. Bilinearity check + pair supports.  Every monomial must be a
    // product of exactly two inputs; each distinct pair collects the set of
    // output columns it feeds.
    std::vector<int> port_of_node(nl.node_count(), -1);
    for (int p = 0; p < n_in; ++p) {
        port_of_node[nl.inputs()[static_cast<std::size_t>(p)].node] = p;
    }
    struct PairInfo {
        int u = 0;  // smaller input port index
        int v = 0;
        std::vector<int> outputs;  // ascending by construction
    };
    std::unordered_map<std::uint64_t, int> pair_index;
    std::vector<PairInfo> pairs;
    for (int o = 0; o < m; ++o) {
        for (const Monomial& mono : anf[static_cast<std::size_t>(o)]) {
            if (mono.count != 2) {
                return reject("output '" +
                              nl.outputs()[static_cast<std::size_t>(o)].name +
                              "' is not a pure bilinear form (a degree-" +
                              std::to_string(mono.count) + " term survives)");
            }
            int u = port_of_node[mono.vars[0]];
            int v = port_of_node[mono.vars[1]];
            if (u > v) {
                std::swap(u, v);
            }
            const std::uint64_t key = static_cast<std::uint64_t>(u) *
                                          static_cast<std::uint64_t>(2 * m) +
                                      static_cast<std::uint64_t>(v);
            auto [it, fresh] =
                pair_index.emplace(key, static_cast<int>(pairs.size()));
            if (fresh) {
                pairs.push_back({u, v, {}});
            }
            pairs[static_cast<std::size_t>(it->second)].outputs.push_back(o);
        }
    }

    // 3. Two-color the pair graph: the operand sides.
    std::vector<std::vector<int>> adjacency(static_cast<std::size_t>(n_in));
    for (const PairInfo& pair : pairs) {
        adjacency[static_cast<std::size_t>(pair.u)].push_back(pair.v);
        adjacency[static_cast<std::size_t>(pair.v)].push_back(pair.u);
    }
    std::vector<int> side(static_cast<std::size_t>(n_in), -1);
    std::vector<int> queue;
    for (int start = 0; start < n_in; ++start) {
        if (side[static_cast<std::size_t>(start)] != -1 ||
            adjacency[static_cast<std::size_t>(start)].empty()) {
            continue;
        }
        side[static_cast<std::size_t>(start)] = 0;
        queue.assign(1, start);
        while (!queue.empty()) {
            const int u = queue.back();
            queue.pop_back();
            for (const int v : adjacency[static_cast<std::size_t>(u)]) {
                if (side[static_cast<std::size_t>(v)] == -1) {
                    side[static_cast<std::size_t>(v)] =
                        1 - side[static_cast<std::size_t>(u)];
                    queue.push_back(v);
                } else if (side[static_cast<std::size_t>(v)] ==
                           side[static_cast<std::size_t>(u)]) {
                    return reject(
                        "the product-pair graph is not bipartite (inputs do "
                        "not split into two operands)");
                }
            }
        }
    }
    int side_counts[2] = {0, 0};
    for (int p = 0; p < n_in; ++p) {
        if (side[static_cast<std::size_t>(p)] == -1) {
            return reject("input '" +
                          nl.inputs()[static_cast<std::size_t>(p)].name +
                          "' feeds no product term");
        }
        ++side_counts[side[static_cast<std::size_t>(p)]];
    }
    if (side_counts[0] != m || side_counts[1] != m) {
        return reject("operand sides are unbalanced (" +
                      std::to_string(side_counts[0]) + "/" +
                      std::to_string(side_counts[1]) + " inputs)");
    }

    // 4. Output bit order from the singleton-support pair counts: column s
    // owns exactly s+1 pairs whose support is {s} (the pairs with
    // i + j = s < m), so the counts 1..m are a permutation signature.
    std::vector<int> singleton_count(static_cast<std::size_t>(m), 0);
    for (const PairInfo& pair : pairs) {
        if (pair.outputs.size() == 1) {
            ++singleton_count[static_cast<std::size_t>(pair.outputs[0])];
        }
    }
    std::vector<int> column_of_output(static_cast<std::size_t>(m), -1);
    std::vector<int> output_of_column(static_cast<std::size_t>(m), -1);
    for (int o = 0; o < m; ++o) {
        const int count = singleton_count[static_cast<std::size_t>(o)];
        if (count < 1 || count > m ||
            output_of_column[static_cast<std::size_t>(count - 1)] != -1) {
            return reject(
                "the output column signature does not match a GF(2^m) "
                "multiplier");
        }
        column_of_output[static_cast<std::size_t>(o)] = count - 1;
        output_of_column[static_cast<std::size_t>(count - 1)] = o;
    }

    // 5. (a_0, b_0) is the unique singleton pair of column 0; canonicalize
    // the commutative A/B ambiguity by putting a_0 on the smaller port.
    const int column0_output = output_of_column[0];
    int a0 = -1;
    int b0 = -1;
    for (const PairInfo& pair : pairs) {
        if (pair.outputs.size() == 1 && pair.outputs[0] == column0_output) {
            a0 = pair.u;  // u < v by construction
            b0 = pair.v;
            break;
        }
    }
    if (a0 < 0) {
        return reject("no (a_0, b_0) anchor pair in the lowest output column");
    }

    // 6. Index the operand bits: (a_i, b_0) lives in exactly column i.
    const auto find_pair = [&](int u, int v) -> const PairInfo* {
        if (u > v) {
            std::swap(u, v);
        }
        const std::uint64_t key = static_cast<std::uint64_t>(u) *
                                      static_cast<std::uint64_t>(2 * m) +
                                  static_cast<std::uint64_t>(v);
        const auto it = pair_index.find(key);
        return it == pair_index.end()
                   ? nullptr
                   : &pairs[static_cast<std::size_t>(it->second)];
    };
    const auto index_side = [&](int this_side, int anchor_other,
                                int anchor_this,
                                std::vector<int>& ordered) -> bool {
        ordered.assign(static_cast<std::size_t>(m), -1);
        ordered[0] = anchor_this;
        for (int p = 0; p < n_in; ++p) {
            if (side[static_cast<std::size_t>(p)] != this_side ||
                p == anchor_this) {
                continue;
            }
            const PairInfo* pair = find_pair(p, anchor_other);
            if (pair == nullptr || pair->outputs.size() != 1) {
                return false;
            }
            const int idx = column_of_output[static_cast<std::size_t>(
                pair->outputs[0])];
            if (idx < 1 || idx >= m || ordered[static_cast<std::size_t>(idx)] != -1) {
                return false;
            }
            ordered[static_cast<std::size_t>(idx)] = p;
        }
        return std::find(ordered.begin(), ordered.end(), -1) == ordered.end();
    };
    RecoveredSpec spec;
    spec.m = m;
    if (!index_side(side[static_cast<std::size_t>(a0)], b0, a0, spec.a_inputs) ||
        !index_side(side[static_cast<std::size_t>(b0)], a0, b0, spec.b_inputs)) {
        return reject("operand bits do not index against the (a_0, b_0) anchor");
    }
    spec.c_outputs = output_of_column;

    // 7. Read f off the reduction signature: the pair (a_1, b_(m-1)) has
    // s = m, so its column support IS the support of x^m mod f.
    const PairInfo* wrap = find_pair(spec.a_inputs[1],
                                     spec.b_inputs[static_cast<std::size_t>(m - 1)]);
    if (wrap == nullptr) {
        return reject("the s = m product pair vanished (no reduction row)");
    }
    gf2::Poly f;
    f.set_coeff(m, true);
    for (const int o : wrap->outputs) {
        f.set_coeff(column_of_output[static_cast<std::size_t>(o)], true);
    }
    if (!gf2::is_irreducible(f)) {
        return reject("recovered polynomial " + f.to_string() +
                      " is not irreducible");
    }
    spec.modulus = f;
    spec.modulus_family = family_label(f);

    // 8. The decisive check: the complete extracted ANF must equal the spec
    // of C = A*B mod f under the recovered port assignment.
    std::vector<NodeId> a_nodes(static_cast<std::size_t>(m));
    std::vector<NodeId> b_nodes(static_cast<std::size_t>(m));
    for (int i = 0; i < m; ++i) {
        a_nodes[static_cast<std::size_t>(i)] =
            nl.inputs()[static_cast<std::size_t>(spec.a_inputs[static_cast<std::size_t>(i)])]
                .node;
        b_nodes[static_cast<std::size_t>(i)] =
            nl.inputs()[static_cast<std::size_t>(spec.b_inputs[static_cast<std::size_t>(i)])]
                .node;
    }
    const SpecTable reference = multiplier_spec(f, a_nodes, b_nodes);
    for (int k = 0; k < m; ++k) {
        const int o = output_of_column[static_cast<std::size_t>(k)];
        if (anf[static_cast<std::size_t>(o)] !=
            reference.columns[static_cast<std::size_t>(k)]) {
            return reject("the extracted ANF does not match C = A*B mod " +
                          f.to_string());
        }
    }

    ReverseResult result;
    result.recovered = true;
    result.spec = std::move(spec);
    return result;
}

AnonymizedNetlist anonymize_ports(const Netlist& nl, std::uint64_t seed) {
    verify::SweepRng rng{seed};
    const auto permutation = [&rng](std::size_t n) {
        std::vector<int> perm(n);
        std::iota(perm.begin(), perm.end(), 0);
        for (std::size_t i = n; i > 1; --i) {
            std::swap(perm[i - 1], perm[static_cast<std::size_t>(rng() % i)]);
        }
        return perm;
    };
    AnonymizedNetlist anon;
    anon.input_map = permutation(nl.inputs().size());
    anon.output_map = permutation(nl.outputs().size());
    anon.netlist = rebuild_with_ports(
        nl, anon.input_map,
        [](int p) { return "x" + std::to_string(p); }, anon.output_map,
        [](int p) { return "y" + std::to_string(p); });
    return anon;
}

Netlist relabel_ports(const Netlist& nl, const RecoveredSpec& spec) {
    const int m = spec.m;
    if (static_cast<int>(nl.inputs().size()) != 2 * m ||
        static_cast<int>(nl.outputs().size()) != m) {
        throw std::invalid_argument{
            "relabel_ports: netlist port counts do not match the spec"};
    }
    std::vector<int> input_order(static_cast<std::size_t>(2 * m));
    for (int i = 0; i < m; ++i) {
        input_order[static_cast<std::size_t>(i)] =
            spec.a_inputs[static_cast<std::size_t>(i)];
        input_order[static_cast<std::size_t>(m + i)] =
            spec.b_inputs[static_cast<std::size_t>(i)];
    }
    return rebuild_with_ports(
        nl, input_order,
        [m](int p) {
            return (p < m) ? "a" + std::to_string(p)
                           : "b" + std::to_string(p - m);
        },
        spec.c_outputs, [](int p) { return "c" + std::to_string(p); });
}

}  // namespace gfr::acv
