// prove_multiplier: backward algebraic rewriting of every output column,
// sharded over verify::Campaign.  Column k's sweep rewrites the c_k driver
// down to primary inputs and compares the canonical ANF against the
// reference signature from multiplier_spec().  Columns are independent and
// results land in per-column slots, so the campaign's globally-minimum
// failing sweep IS the lowest divergent column — the verdict and the
// counterexample are bit-identical at any thread count.

#include "acv/acv.h"

#include "verify/campaign.h"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>

namespace gfr::acv {

using field::Field;
using netlist::Netlist;
using netlist::NodeId;

std::string ProofFailure::to_string() const {
    if (blowup) {
        return "c" + std::to_string(column) + " algebraic blowup: " +
               std::to_string(residual_monomials) +
               " monomials in flight [repro: algebraic column=" +
               std::to_string(column) + " cap=" + std::to_string(monomial_cap) +
               "]";
    }
    return "c" + std::to_string(column) + " algebraic mismatch: residual=" +
           std::to_string(residual_monomials) + " monomials, netlist=" +
           std::to_string(static_cast<int>(netlist_bit)) + " reference=" +
           std::to_string(static_cast<int>(reference_bit)) + " for A=" +
           witness_a.to_string() + ", B=" + witness_b.to_string() +
           " [repro: algebraic column=" + std::to_string(column) + "]";
}

namespace {

/// The multiplier interface, resolved by NAME rather than port position:
/// prove_multiplier accepts netlists whose output list carries extra lanes
/// (CED checkers append ced_err*/ced_alarm after c0..c(m-1)) — the proof
/// simply never expands them, which is exactly "checker logic excluded from
/// the signature".
struct PortMap {
    std::vector<NodeId> a_nodes;
    std::vector<NodeId> b_nodes;
    std::vector<NodeId> c_drivers;
    /// node id -> operand bit: i for a_i, m+i for b_i, -1 otherwise.
    std::vector<int> operand_bit;
};

PortMap resolve_ports(const Netlist& nl, int m) {
    if (static_cast<int>(nl.inputs().size()) != 2 * m) {
        throw std::invalid_argument{
            "prove_multiplier: expected " + std::to_string(2 * m) +
            " inputs (a0..a" + std::to_string(m - 1) + ", b0..b" +
            std::to_string(m - 1) + "), got " +
            std::to_string(nl.inputs().size())};
    }
    PortMap ports;
    ports.a_nodes.resize(static_cast<std::size_t>(m));
    ports.b_nodes.resize(static_cast<std::size_t>(m));
    ports.c_drivers.resize(static_cast<std::size_t>(m));
    ports.operand_bit.assign(nl.node_count(), -1);
    for (int i = 0; i < m; ++i) {
        const int ai = nl.input_index("a" + std::to_string(i));
        const int bi = nl.input_index("b" + std::to_string(i));
        const int ci = nl.output_index("c" + std::to_string(i));
        if (ai < 0 || bi < 0 || ci < 0) {
            throw std::invalid_argument{
                "prove_multiplier: missing multiplier port a" +
                std::to_string(i) + "/b" + std::to_string(i) + "/c" +
                std::to_string(i)};
        }
        const NodeId an = nl.inputs()[static_cast<std::size_t>(ai)].node;
        const NodeId bn = nl.inputs()[static_cast<std::size_t>(bi)].node;
        ports.a_nodes[static_cast<std::size_t>(i)] = an;
        ports.b_nodes[static_cast<std::size_t>(i)] = bn;
        ports.c_drivers[static_cast<std::size_t>(i)] =
            nl.outputs()[static_cast<std::size_t>(ci)].node;
        ports.operand_bit[an] = i;
        ports.operand_bit[bn] = m + i;
    }
    return ports;
}

/// Mismatch counterexample without simulation: the residual (netlist ANF
/// xor spec) is nonzero; a residual monomial of minimal variable count is
/// minimal by inclusion, so setting exactly its variables to 1 fires that
/// one monomial and no other — the netlist bit and the reference bit differ
/// at that assignment by construction.
ProofFailure mismatch_failure(int column, const std::vector<Monomial>& anf,
                              const std::vector<Monomial>& spec,
                              const PortMap& ports, const Field& field) {
    std::vector<Monomial> residual;
    std::set_symmetric_difference(anf.begin(), anf.end(), spec.begin(),
                                  spec.end(), std::back_inserter(residual));
    ProofFailure failure;
    failure.column = column;
    failure.residual_monomials = residual.size();
    const Monomial* minimal = &residual.front();
    for (const Monomial& mono : residual) {
        if (mono.count < minimal->count) {
            minimal = &mono;
        }
    }
    gf2::Poly a;
    gf2::Poly b;
    const int m = static_cast<int>(ports.a_nodes.size());
    for (int i = 0; i < minimal->count; ++i) {
        const int bit = ports.operand_bit[minimal->vars[static_cast<std::size_t>(i)]];
        if (bit < m) {
            a.set_coeff(bit, true);
        } else {
            b.set_coeff(bit - m, true);
        }
    }
    failure.witness_a = a;
    failure.witness_b = b;
    failure.reference_bit = field.mul(a, b).coeff(column);
    failure.netlist_bit = !failure.reference_bit;
    return failure;
}

}  // namespace

std::optional<ProofFailure> prove_multiplier(const Netlist& nl,
                                             const Field& field,
                                             const ProveOptions& options,
                                             ProofStats* stats) {
    const int m = field.degree();
    const PortMap ports = resolve_ports(nl, m);
    const SpecTable spec =
        multiplier_spec(field.modulus(), ports.a_nodes, ports.b_nodes);

    // Per-COLUMN result slots: a worker only ever writes slot k while owning
    // sweep k, so there is no cross-worker contention, and the campaign's
    // minimum failing sweep picks the winner deterministically.
    std::vector<std::optional<ProofFailure>> failures(
        static_cast<std::size_t>(m));
    std::vector<ColumnExpander::Stats> column_stats(static_cast<std::size_t>(m));
    std::vector<std::size_t> column_monomials(static_cast<std::size_t>(m), 0);

    // Column proofs are few (m sweeps) and individually heavy — shard down
    // to one sweep per worker, claimed one at a time.
    verify::Campaign campaign{{.threads = options.threads,
                               .min_sweeps_per_worker = 1,
                               .chunk = 1}};
    const auto factory = [&](int) -> verify::Campaign::SweepFn {
        auto expander = std::make_shared<ColumnExpander>(nl);
        auto anf = std::make_shared<std::vector<Monomial>>();
        return [&, expander, anf](std::uint64_t sweep) -> bool {
            const int k = static_cast<int>(sweep);
            const auto status = expander->expand(
                ports.c_drivers[static_cast<std::size_t>(k)],
                options.max_monomials, *anf,
                &column_stats[static_cast<std::size_t>(k)]);
            if (status != ColumnExpander::Status::Ok) {
                ProofFailure failure;
                failure.column = k;
                failure.blowup = true;
                failure.monomial_cap = options.max_monomials;
                failure.residual_monomials =
                    column_stats[static_cast<std::size_t>(k)].peak_monomials;
                failures[static_cast<std::size_t>(k)] = std::move(failure);
                return true;
            }
            column_monomials[static_cast<std::size_t>(k)] = anf->size();
            if (*anf == spec.columns[static_cast<std::size_t>(k)]) {
                return false;
            }
            failures[static_cast<std::size_t>(k)] = mismatch_failure(
                k, *anf, spec.columns[static_cast<std::size_t>(k)], ports,
                field);
            return true;
        };
    };

    const std::uint64_t failing =
        campaign.run(static_cast<std::uint64_t>(m), factory);
    if (failing != verify::kNoFailure) {
        return failures[static_cast<std::size_t>(failing)];
    }
    if (stats != nullptr) {
        *stats = {};
        stats->columns = m;
        stats->spec_monomials = spec.total_monomials;
        for (int k = 0; k < m; ++k) {
            stats->netlist_monomials +=
                column_monomials[static_cast<std::size_t>(k)];
            stats->expansion_events +=
                column_stats[static_cast<std::size_t>(k)].expansion_events;
            stats->peak_column_monomials = std::max(
                stats->peak_column_monomials,
                column_stats[static_cast<std::size_t>(k)].peak_monomials);
        }
    }
    return std::nullopt;
}

}  // namespace gfr::acv
