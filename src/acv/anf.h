#ifndef GFR_ACV_ANF_H
#define GFR_ACV_ANF_H

// GF(2) polynomial-expression engine over netlist signals — the substrate of
// the algebraic verification tier (ROADMAP item 3, after Yu & Ciesielski,
// arXiv 1612.04588 / 1802.06870).
//
// A signal's function is held in algebraic normal form (Zhegalkin): a set of
// monomials, each a set of netlist variables, with XOR = symmetric
// difference (mod-2 cancellation) and AND = product (x^2 = x, so a product
// is a set union).  ColumnExpander performs the papers' *backward rewriting*:
// starting from one output's driver, every gate variable is substituted by
// its fanin expression in reverse topological order until only primary
// inputs remain.  Two facts keep that sound and fast:
//
//   - Substitution strictly decreases the maximal gate variable of a
//     monomial (fanin id < gate id), so bucketing monomials by that maximum
//     and scanning ids downward visits each gate exactly once.
//   - Identical monomials share the same maximal gate variable, so they
//     always meet in the same bucket *before* it is expanded — per-bucket
//     parity deduplication is the only cancellation the algorithm ever
//     needs (plus one final pass over the input-only monomials).
//
// multiplier_spec() builds the reference side: the per-output-column
// monomial sets of C = A*B mod f, straight from x^s mod f — the word-level
// signature the backward rewriting must reach.

#include "gf2/gf2_poly.h"
#include "netlist/netlist.h"

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace gfr::acv {

/// One ANF monomial: a product of distinct netlist variables, stored inline
/// as a sorted id array.  kMaxVars bounds the AND-degree a monomial can
/// reach during expansion; every multiplier here is bilinear (and_depth 1),
/// so correct netlists never come near it — only mutants with injected
/// XOR->AND faults do, and the expander reports those as a degree blowup.
struct Monomial {
    static constexpr int kMaxVars = 12;

    std::uint8_t count = 0;
    std::array<netlist::NodeId, kMaxVars> vars{};

    /// Insert a variable, keeping vars sorted and unique (x*x = x).
    /// Returns false when the monomial is full and v is not yet present.
    bool insert(netlist::NodeId v) {
        int pos = 0;
        while (pos < count && vars[static_cast<std::size_t>(pos)] < v) {
            ++pos;
        }
        if (pos < count && vars[static_cast<std::size_t>(pos)] == v) {
            return true;
        }
        if (count == kMaxVars) {
            return false;
        }
        for (int i = count; i > pos; --i) {
            vars[static_cast<std::size_t>(i)] = vars[static_cast<std::size_t>(i - 1)];
        }
        vars[static_cast<std::size_t>(pos)] = v;
        ++count;
        return true;
    }

    /// Remove the variable at index `idx` (0 <= idx < count).
    void erase_at(int idx) {
        for (int i = idx + 1; i < count; ++i) {
            vars[static_cast<std::size_t>(i - 1)] = vars[static_cast<std::size_t>(i)];
        }
        --count;
    }

    /// The product of exactly two variables — the shape every monomial of a
    /// GF(2^m) multiplier spec has.
    static Monomial pair(netlist::NodeId a, netlist::NodeId b) {
        Monomial mono;
        mono.insert(a);
        mono.insert(b);
        return mono;
    }

    friend bool operator==(const Monomial& x, const Monomial& y) {
        if (x.count != y.count) {
            return false;
        }
        for (int i = 0; i < x.count; ++i) {
            if (x.vars[static_cast<std::size_t>(i)] !=
                y.vars[static_cast<std::size_t>(i)]) {
                return false;
            }
        }
        return true;
    }

    friend bool operator<(const Monomial& x, const Monomial& y) {
        const int n = x.count < y.count ? x.count : y.count;
        for (int i = 0; i < n; ++i) {
            const auto xv = x.vars[static_cast<std::size_t>(i)];
            const auto yv = y.vars[static_cast<std::size_t>(i)];
            if (xv != yv) {
                return xv < yv;
            }
        }
        return x.count < y.count;
    }
};

/// Backward-rewriting engine for one netlist.  Reusable across outputs; all
/// working storage (buckets, scratch) retains capacity between expand()
/// calls, so proving m columns allocates like proving one.
class ColumnExpander {
public:
    enum class Status : std::uint8_t {
        Ok,           ///< `out` holds the signal's full input-only ANF, sorted
        MonomialCap,  ///< in-flight monomials exceeded max_monomials
        DegreeCap,    ///< a monomial exceeded Monomial::kMaxVars variables
    };

    struct Stats {
        std::size_t peak_monomials = 0;     ///< max monomials alive at once
        std::size_t expansion_events = 0;   ///< gate substitutions performed
    };

    explicit ColumnExpander(const netlist::Netlist& nl) : nl_{&nl} {}

    /// Rewrite the function of `root` down to primary inputs.  On Ok, `out`
    /// is the canonical ANF: sorted, duplicate-free monomials over input
    /// node ids (empty = constant 0).  On either cap the expansion aborts
    /// and `out` is meaningless; stats (if given) are filled either way.
    Status expand(netlist::NodeId root, std::size_t max_monomials,
                  std::vector<Monomial>& out, Stats* stats = nullptr);

private:
    /// Route one monomial: drop it on a Const0 variable, finish it when only
    /// inputs remain, otherwise bucket it under its maximal gate variable.
    /// Returns false when doing so would exceed the monomial cap.
    bool emit(const Monomial& mono, std::vector<Monomial>& out);

    const netlist::Netlist* nl_;
    std::vector<std::vector<Monomial>> buckets_;  ///< by maximal gate var
    std::vector<netlist::NodeId> touched_;        ///< buckets holding monomials
    std::vector<Monomial> work_;
    std::size_t live_ = 0;  ///< monomials currently in buckets
    std::size_t cap_ = 0;
    Stats stats_;
};

/// The reference signature of C = A*B mod `modulus`, per output column:
/// columns[k] is the sorted set of monomials a_i*b_j (as node-id pairs) with
/// bit k of x^(i+j) mod f set.  All 2m node ids must be distinct.
struct SpecTable {
    std::vector<std::vector<Monomial>> columns;
    std::size_t total_monomials = 0;
};

SpecTable multiplier_spec(const gf2::Poly& modulus,
                          std::span<const netlist::NodeId> a_nodes,
                          std::span<const netlist::NodeId> b_nodes);

}  // namespace gfr::acv

#endif  // GFR_ACV_ANF_H
