#ifndef GFR_ACV_ACV_H
#define GFR_ACV_ACV_H

// Algebraic circuit verification (ROADMAP item 3): proof-grade multiplier
// checking and anonymous-circuit spec recovery, after Yu & Ciesielski
// (arXiv 1612.04588, 1802.06870).
//
// Everything the repo verified before this tier was simulation against an
// oracle — exhaustive (and therefore sound) only for 2m <= 22, statistical
// everywhere else.  prove_multiplier() closes that gap: it rewrites every
// output column's function backward through the netlist to its canonical
// ANF over the primary inputs and compares that against the word-level spec
// of C = A*B mod f.  Equal ANFs mean equal Boolean functions — a *proof*
// for any m, with zero simulation.  The m columns are independent, so they
// ride verify::Campaign's sharded driver; the verdict (and the reported
// failure) is the lowest failing column, bit-identical at any thread count.
//
// reverse_engineer() runs the same extraction on an *anonymous* netlist —
// ports stripped or shuffled, e.g. a third-party VHDL export read back via
// netlist::parse_vhdl — and recovers the irreducible modulus f(x), the
// operand/result port ordering, and the modulus family, confirming the
// recovery against the repo's irreducibility tooling and a full spec
// re-verification before reporting success.
//
// This is the third structurally independent check beside the compiled tape
// and the lane oracle: it shares no simulation, no field engine arithmetic
// on the netlist side, and no code with either.

#include "acv/anf.h"
#include "field/gf2m.h"
#include "gf2/gf2_poly.h"
#include "netlist/netlist.h"

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace gfr::acv {

struct ProveOptions {
    /// Campaign workers for the per-column proofs; <= 0 = hardware
    /// concurrency.  The verdict is thread-count-invariant.
    int threads = 0;
    /// Ceiling on monomials alive per column during backward rewriting.
    /// Correct multiplier netlists stay far below it (the flat m = 163
    /// families peak in the tens of thousands); a faulty netlist whose
    /// expansion crosses it is reported as a blowup failure — still a
    /// rejection, never an acceptance.
    std::size_t max_monomials = std::size_t{1} << 22;
};

/// Success-side accounting (filled only when the proof succeeds).
struct ProofStats {
    int columns = 0;
    std::size_t spec_monomials = 0;         ///< reference signature size
    std::size_t netlist_monomials = 0;      ///< extracted ANF size (== spec on success)
    std::size_t peak_column_monomials = 0;  ///< worst in-flight count of any column
    std::size_t expansion_events = 0;       ///< total gate substitutions
};

/// The algebraic counterexample: the first (lowest) divergent output column
/// and the size of the residual (netlist ANF xor spec).  For a mismatch the
/// witness operands make the netlist and the reference disagree on exactly
/// bit `column` — synthesized from a minimal residual monomial, not found by
/// simulation.  A blowup carries no witness: the expansion exceeded a cap,
/// which rejects the netlist without naming an assignment.
struct ProofFailure {
    int column = 0;
    std::size_t residual_monomials = 0;
    bool blowup = false;
    std::size_t monomial_cap = 0;  ///< the cap in force (printed for blowups)
    field::Field::Element witness_a;
    field::Field::Element witness_b;
    bool netlist_bit = false;
    bool reference_bit = false;

    /// Pinned format (regression-tested):
    ///   "c3 algebraic mismatch: residual=2 monomials, netlist=0 reference=1
    ///    for A=y^2, B=y [repro: algebraic column=3]"
    ///   "c0 algebraic blowup: 4194305 monomials in flight
    ///    [repro: algebraic column=0 cap=4194304]"
    [[nodiscard]] std::string to_string() const;
};

/// Prove that `nl` computes C = A*B in `field`, with zero simulation.
/// std::nullopt on success (the netlist is *proved* correct for all inputs);
/// otherwise the lowest-column failure.  Ports are resolved by name
/// (a0..a(m-1), b0..b(m-1), c0..c(m-1)); extra outputs — CED checker lanes
/// like ced_err*/ced_alarm — are excluded from the signature, so guarded
/// netlists prove as-is.  Throws std::invalid_argument when the interface
/// does not expose exactly the 2m operand inputs and the m product outputs.
std::optional<ProofFailure> prove_multiplier(const netlist::Netlist& nl,
                                             const field::Field& field,
                                             const ProveOptions& options = {},
                                             ProofStats* stats = nullptr);

struct ReverseOptions {
    /// Per-output ANF expansion ceiling (see ProveOptions::max_monomials).
    std::size_t max_monomials = std::size_t{1} << 22;
};

/// What reverse engineering recovers from an anonymous netlist.
struct RecoveredSpec {
    gf2::Poly modulus;           ///< the irreducible f(x)
    int m = 0;
    std::vector<int> a_inputs;   ///< a_inputs[i] = input port index of a_i
    std::vector<int> b_inputs;   ///< b_inputs[i] = input port index of b_i
    std::vector<int> c_outputs;  ///< c_outputs[k] = output port index of c_k
    /// "trinomial k=<k>", "type II pentanomial (m, n)", "type I pentanomial
    /// (m, n)", or "" when f matches none of the catalogued families.
    std::string modulus_family;

    /// E.g. "GF(2^8) multiplier: f = y^8 + y^4 + y^3 + y^2 + 1
    ///       (type II pentanomial (8, 2))".
    [[nodiscard]] std::string to_string() const;
};

struct ReverseResult {
    bool recovered = false;
    /// When !recovered: a clean verdict, always prefixed
    /// "not a GF(2^m) multiplier: ".
    std::string reason;
    RecoveredSpec spec;
};

/// Recover the multiplier spec from an anonymous netlist: extract every
/// output's ANF, identify the operand sides and bit order from the bilinear
/// structure, read f(x) off the reduction signature, check it with the
/// repo's irreducibility tooling, and re-verify the full spec before
/// reporting success.  C = A*B is commutative, so the A/B labelling is
/// canonicalized to put a_0 on the smaller input port index.  Never throws
/// on non-multiplier input — it reports a structured rejection instead.
ReverseResult reverse_engineer(const netlist::Netlist& nl,
                               const ReverseOptions& options = {});

/// A name-stripped clone for round-trip tests and demos: ports renamed to
/// x<p>/y<p> and shuffled by a seeded permutation (deterministic; the same
/// generator as campaign sweeps).  input_map[p] / output_map[p] give the
/// source port index now sitting at anonymous port p.
struct AnonymizedNetlist {
    netlist::Netlist netlist;
    std::vector<int> input_map;
    std::vector<int> output_map;
};

AnonymizedNetlist anonymize_ports(const netlist::Netlist& nl, std::uint64_t seed);

/// Re-expose an anonymous netlist under the canonical a/b/c interface per a
/// recovered spec (gate-for-gate clone; only port names and order change).
/// The result is a drop-in for every multiplier consumer in the repo —
/// prove_multiplier, verify_multiplier, the optimizer, the guard pass.
netlist::Netlist relabel_ports(const netlist::Netlist& nl,
                               const RecoveredSpec& spec);

}  // namespace gfr::acv

#endif  // GFR_ACV_ACV_H
