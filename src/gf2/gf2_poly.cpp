#include "gf2/gf2_poly.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace gfr::gf2 {

namespace {
constexpr int kWordBits = 64;
}  // namespace

void WordVec::grow(std::size_t n) {
    const std::size_t new_cap = std::max(n, cap_ * 2);
    auto* block = new std::uint64_t[new_cap];
    std::memcpy(block, ptr_, size_ * sizeof(std::uint64_t));
    if (ptr_ != inline_) {
        delete[] ptr_;
    }
    ptr_ = block;
    cap_ = new_cap;
}

void WordVec::grow_discard(std::size_t n) {
    const std::size_t new_cap = std::max(n, cap_ * 2);
    auto* block = new std::uint64_t[new_cap];
    if (ptr_ != inline_) {
        delete[] ptr_;
    }
    ptr_ = block;
    cap_ = new_cap;
}

void Poly::normalize() {
    while (!words_.empty() && words_.back() == 0) {
        words_.pop_back();
    }
}

Poly Poly::monomial(int degree) {
    if (degree < 0) {
        throw std::invalid_argument{"Poly::monomial: negative degree"};
    }
    Poly p;
    p.words_.assign(static_cast<std::size_t>(degree / kWordBits) + 1, 0);
    p.words_.back() = std::uint64_t{1} << (degree % kWordBits);
    return p;
}

Poly Poly::from_exponents(std::initializer_list<int> exponents) {
    return from_exponents(std::vector<int>{exponents});
}

Poly Poly::from_exponents(const std::vector<int>& exponents) {
    Poly p;
    for (const int e : exponents) {
        p.set_coeff(e, !p.coeff(e));  // duplicates cancel mod 2
    }
    return p;
}

Poly Poly::from_words(std::span<const std::uint64_t> words) {
    Poly p;
    p.words_.assign(words);
    p.normalize();
    return p;
}

Poly Poly::from_words(std::initializer_list<std::uint64_t> words) {
    return from_words(std::span<const std::uint64_t>{words.begin(), words.size()});
}

void Poly::assign_words(std::span<const std::uint64_t> words) {
    words_.assign(words);
    normalize();
}

bool Poly::is_one() const noexcept {
    return words_.size() == 1 && words_[0] == 1;
}

int Poly::degree() const noexcept {
    if (words_.empty()) {
        return -1;
    }
    const int top = static_cast<int>(words_.size()) - 1;
    return top * kWordBits + (kWordBits - 1 - std::countl_zero(words_.back()));
}

bool Poly::coeff(int k) const noexcept {
    if (k < 0) {
        return false;
    }
    const auto w = static_cast<std::size_t>(k / kWordBits);
    if (w >= words_.size()) {
        return false;
    }
    return (words_[w] >> (k % kWordBits)) & 1U;
}

void Poly::set_coeff(int k, bool value) {
    if (k < 0) {
        throw std::invalid_argument{"Poly::set_coeff: negative exponent"};
    }
    const auto w = static_cast<std::size_t>(k / kWordBits);
    if (value) {
        if (w >= words_.size()) {
            words_.resize(w + 1);
        }
        words_[w] |= std::uint64_t{1} << (k % kWordBits);
    } else if (w < words_.size()) {
        words_[w] &= ~(std::uint64_t{1} << (k % kWordBits));
        normalize();
    }
}

int Poly::weight() const noexcept {
    int count = 0;
    for (const auto w : words_) {
        count += std::popcount(w);
    }
    return count;
}

std::vector<int> Poly::support() const {
    std::vector<int> out;
    out.reserve(static_cast<std::size_t>(weight()));
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
        std::uint64_t w = words_[wi];
        while (w != 0) {
            const int bit = std::countr_zero(w);
            out.push_back(static_cast<int>(wi) * kWordBits + bit);
            w &= w - 1;
        }
    }
    return out;
}

Poly operator+(const Poly& a, const Poly& b) {
    Poly out = a;
    out += b;
    return out;
}

Poly& Poly::operator+=(const Poly& rhs) {
    if (rhs.words_.size() > words_.size()) {
        words_.resize(rhs.words_.size());
    }
    for (std::size_t i = 0; i < rhs.words_.size(); ++i) {
        words_[i] ^= rhs.words_[i];
    }
    normalize();
    return *this;
}

Poly operator<<(const Poly& a, int shift) {
    if (shift < 0) {
        throw std::invalid_argument{"Poly::operator<<: negative shift"};
    }
    if (a.is_zero() || shift == 0) {
        return a;
    }
    Poly out;
    out.add_shifted(a, shift);
    return out;
}

Poly operator>>(const Poly& a, int shift) {
    if (shift < 0) {
        throw std::invalid_argument{"Poly::operator>>: negative shift"};
    }
    Poly out;
    Poly::shr_into(a, shift, out);
    return out;
}

Poly operator*(const Poly& a, const Poly& b) {
    Poly out;
    Poly::mul_into(a, b, out);
    return out;
}

void Poly::add_shifted(const Poly& p, int shift) {
    if (shift < 0) {
        throw std::invalid_argument{"Poly::add_shifted: negative shift"};
    }
    if (p.is_zero()) {
        return;
    }
    const int ws = shift / kWordBits;
    const int bs = shift % kWordBits;
    const std::size_t need =
        p.words_.size() + static_cast<std::size_t>(ws) + (bs != 0 ? 1 : 0);
    if (words_.size() < need) {
        words_.resize(need);
    }
    for (std::size_t i = 0; i < p.words_.size(); ++i) {
        words_[i + static_cast<std::size_t>(ws)] ^= p.words_[i] << bs;
        if (bs != 0) {
            words_[i + static_cast<std::size_t>(ws) + 1] ^=
                p.words_[i] >> (kWordBits - bs);
        }
    }
    normalize();
}

void Poly::mul_into(const Poly& a, const Poly& b, Poly& out) {
    if (&out == &a || &out == &b) {
        out = a * b;  // aliasing: fall back to a temporary
        return;
    }
    if (a.is_zero() || b.is_zero()) {
        out.words_.clear();
        return;
    }
    // Comb multiplication: for every set bit of a, XOR a shifted copy of b.
    // Work over raw words; out's capacity is reused across calls.
    const std::size_t out_words =
        static_cast<std::size_t>((a.degree() + b.degree()) / kWordBits) + 1;
    out.words_.assign(out_words + 1, 0);
    auto& acc = out.words_;
    for (std::size_t wi = 0; wi < a.words_.size(); ++wi) {
        std::uint64_t w = a.words_[wi];
        while (w != 0) {
            const int bit = std::countr_zero(w);
            w &= w - 1;
            const int shift = static_cast<int>(wi) * kWordBits + bit;
            const int ws = shift / kWordBits;
            const int bs = shift % kWordBits;
            for (std::size_t bj = 0; bj < b.words_.size(); ++bj) {
                acc[bj + static_cast<std::size_t>(ws)] ^= b.words_[bj] << bs;
                if (bs != 0) {
                    acc[bj + static_cast<std::size_t>(ws) + 1] ^=
                        b.words_[bj] >> (kWordBits - bs);
                }
            }
        }
    }
    out.normalize();
}

void Poly::square_into(const Poly& a, Poly& out) {
    using detail::spread32;
    if (&out == &a) {
        Poly tmp;
        square_into(a, tmp);
        out = std::move(tmp);
        return;
    }
    out.words_.assign(a.words_.size() * 2, 0);
    for (std::size_t i = 0; i < a.words_.size(); ++i) {
        const std::uint64_t w = a.words_[i];
        out.words_[2 * i] = spread32(static_cast<std::uint32_t>(w));
        out.words_[2 * i + 1] = spread32(static_cast<std::uint32_t>(w >> 32));
    }
    out.normalize();
}

void Poly::shr_into(const Poly& a, int shift, Poly& out) {
    if (shift < 0) {
        throw std::invalid_argument{"Poly::shr_into: negative shift"};
    }
    const int word_shift = shift / kWordBits;
    const int bit_shift = shift % kWordBits;
    if (static_cast<std::size_t>(word_shift) >= a.words_.size()) {
        out.words_.clear();
        return;
    }
    out.words_.resize(a.words_.size() - static_cast<std::size_t>(word_shift));
    for (std::size_t i = 0; i < out.words_.size(); ++i) {
        out.words_[i] = a.words_[i + static_cast<std::size_t>(word_shift)] >> bit_shift;
        if (bit_shift != 0 && i + static_cast<std::size_t>(word_shift) + 1 < a.words_.size()) {
            out.words_[i] ^= a.words_[i + static_cast<std::size_t>(word_shift) + 1]
                             << (kWordBits - bit_shift);
        }
    }
    out.normalize();
}

void Poly::truncate(int bits) {
    if (bits <= 0) {
        words_.clear();
        return;
    }
    const auto keep_words = static_cast<std::size_t>((bits + kWordBits - 1) / kWordBits);
    if (words_.size() > keep_words) {
        words_.resize(keep_words);
    }
    const int top = bits % kWordBits;
    if (top != 0 && words_.size() == keep_words) {
        words_.back() &= (std::uint64_t{1} << top) - 1;
    }
    normalize();
}

void Poly::assign_word(std::uint64_t word) {
    if (word == 0) {
        words_.clear();
        return;
    }
    words_.resize(1);
    words_[0] = word;
}

Poly Poly::square() const {
    // Squaring over GF(2) interleaves each coefficient bit with a zero bit.
    Poly out;
    for (const int e : support()) {
        out.set_coeff(2 * e, true);
    }
    return out;
}

void Poly::divmod_inplace(Poly& rem, const Poly& den, Poly* quot) {
    if (den.is_zero()) {
        throw std::invalid_argument{"Poly::divmod: division by zero polynomial"};
    }
    if (quot != nullptr) {
        quot->words_.clear();
    }
    const int dd = den.degree();
    int rd = rem.degree();
    while (rd >= dd) {
        const int shift = rd - dd;
        if (quot != nullptr) {
            quot->set_coeff(shift, true);
        }
        rem.add_shifted(den, shift);  // in-place; no den << shift temporary
        rd = rem.degree();
    }
}

std::pair<Poly, Poly> Poly::divmod(const Poly& num, const Poly& den) {
    Poly rem = num;
    Poly quot;
    divmod_inplace(rem, den, &quot);
    return {std::move(quot), std::move(rem)};
}

Poly operator%(const Poly& a, const Poly& b) { return Poly::divmod(a, b).second; }

Poly operator/(const Poly& a, const Poly& b) { return Poly::divmod(a, b).first; }

Poly Poly::gcd(Poly a, Poly b) {
    while (!b.is_zero()) {
        Poly r = a % b;
        a = std::move(b);
        b = std::move(r);
    }
    return a;
}

Poly Poly::mulmod(const Poly& a, const Poly& b, const Poly& f) {
    return (a * b) % f;
}

Poly Poly::sqrmod(const Poly& a, const Poly& f) { return a.square() % f; }

Poly Poly::pow2k_mod(const Poly& a, int k, const Poly& f) {
    if (k < 0) {
        throw std::invalid_argument{"Poly::pow2k_mod: negative k"};
    }
    Poly acc = a % f;
    for (int i = 0; i < k; ++i) {
        acc = sqrmod(acc, f);
    }
    return acc;
}

std::string Poly::to_string() const {
    if (is_zero()) {
        return "0";
    }
    std::string out;
    const auto exps = support();
    for (auto it = exps.rbegin(); it != exps.rend(); ++it) {
        if (!out.empty()) {
            out += " + ";
        }
        if (*it == 0) {
            out += "1";
        } else if (*it == 1) {
            out += "y";
        } else {
            out += "y^" + std::to_string(*it);
        }
    }
    return out;
}

}  // namespace gfr::gf2
