#include "gf2/gf2_poly.h"

#include "gf2/clmul.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <stdexcept>

namespace gfr::gf2 {

namespace {
constexpr int kWordBits = 64;

// Default Karatsuba crossover, in words per operand (tuned by
// bench/microbench_field, recorded in BENCH_2.json).  With PCLMULQDQ the
// word product is a single instruction and schoolbook stays competitive
// longer — the measured crossover sits at 16 words, so operands below that
// never split (15 keeps 9-15-word operands, e.g. NIST m=571, on the faster
// schoolbook) and a 16-word multiply does one split onto 8-word schoolbook
// halves.  The portable comb clmul is ~an order of magnitude costlier per
// word pair, so splitting pays off much earlier there.
#if defined(GFR_USE_PCLMUL) && defined(__PCLMUL__)
constexpr int kDefaultKaratsubaThresholdWords = 15;
#else
constexpr int kDefaultKaratsubaThresholdWords = 2;
#endif

std::atomic<int> g_karatsuba_threshold{kDefaultKaratsubaThresholdWords};

// --- Word-level product kernels ---------------------------------------------
//
// All kernels XOR the product of (a, an words) x (b, bn words) into dest,
// which the caller supplies pre-zeroed with an + bn words.  Working over raw
// word spans keeps the Karatsuba recursion free of Poly bookkeeping and lets
// every temporary live in one caller-owned arena.

/// Schoolbook: one carry-less 64x64 product per word pair.
void school_mul_words(const std::uint64_t* a, std::size_t an, const std::uint64_t* b,
                      std::size_t bn, std::uint64_t* dest) noexcept {
    for (std::size_t i = 0; i < an; ++i) {
        const std::uint64_t ai = a[i];
        if (ai == 0) {
            continue;
        }
        for (std::size_t j = 0; j < bn; ++j) {
            std::uint64_t hi = 0;
            std::uint64_t lo = 0;
            detail::clmul64(ai, b[j], hi, lo);
            dest[i + j] ^= lo;
            dest[i + j + 1] ^= hi;
        }
    }
}

/// Scratch words kara_mul_words may touch for operands of <= n words per
/// side at the given threshold: 4*ceil(n/2) per recursion level (two split
/// sums plus one 2k-word temporary product), summed down the levels.
std::size_t kara_scratch_words(std::size_t n, std::size_t threshold) noexcept {
    std::size_t total = 0;
    while (n > threshold) {
        const std::size_t k = (n + 1) / 2;
        total += 4 * k;
        n = k;
    }
    return total;
}

/// Karatsuba on word-aligned splits.  dest (an + bn words) must be
/// pre-zeroed; scratch must hold kara_scratch_words(max(an, bn), threshold)
/// words.  Recurses until the smaller operand fits the schoolbook threshold.
void kara_mul_words(const std::uint64_t* a, std::size_t an, const std::uint64_t* b,
                    std::size_t bn, std::uint64_t* dest, std::uint64_t* scratch,
                    std::size_t threshold) noexcept {
    if (an < bn) {
        std::swap(a, b);
        std::swap(an, bn);
    }
    if (bn == 0) {
        return;
    }
    if (bn <= threshold) {
        school_mul_words(a, an, b, bn, dest);
        return;
    }
    const std::size_t k = (an + 1) / 2;
    if (bn <= k) {
        // b spans only the low split of a: a*b = a0*b + (a1*b) << 64k, two
        // subproducts with no middle term.  The high part goes through a
        // zeroed temporary because its destination overlaps a0*b's words.
        kara_mul_words(a, k, b, bn, dest, scratch, threshold);
        const std::size_t hi_words = (an - k) + bn;
        std::uint64_t* t = scratch;
        std::memset(t, 0, hi_words * sizeof(std::uint64_t));
        kara_mul_words(a + k, an - k, b, bn, t, scratch + 2 * k, threshold);
        for (std::size_t i = 0; i < hi_words; ++i) {
            dest[k + i] ^= t[i];
        }
        return;
    }
    // Balanced split at k words: a = a0 + a1 X, b = b0 + b1 X with X = y^64k.
    //   z0 = a0*b0, z2 = a1*b1, middle = (a0^a1)(b0^b1) ^ z0 ^ z2.
    // z0 and z2 land in disjoint halves of dest directly; the middle term is
    // built in scratch and XORed in at offset k.
    const std::size_t a1n = an - k;
    const std::size_t b1n = bn - k;
    kara_mul_words(a, k, b, k, dest, scratch, threshold);
    kara_mul_words(a + k, a1n, b + k, b1n, dest + 2 * k, scratch, threshold);
    std::uint64_t* sa = scratch;
    std::uint64_t* sb = scratch + k;
    std::uint64_t* t = scratch + 2 * k;
    for (std::size_t i = 0; i < k; ++i) {
        sa[i] = a[i] ^ (i < a1n ? a[k + i] : 0);
        sb[i] = b[i] ^ (i < b1n ? b[k + i] : 0);
    }
    std::memset(t, 0, 2 * k * sizeof(std::uint64_t));
    kara_mul_words(sa, k, sb, k, t, scratch + 4 * k, threshold);
    for (std::size_t i = 0; i < 2 * k; ++i) {
        t[i] ^= dest[i];  // ^= z0
    }
    for (std::size_t i = 0; i < a1n + b1n; ++i) {
        t[i] ^= dest[2 * k + i];  // ^= z2
    }
    for (std::size_t i = 0; i < 2 * k; ++i) {
        dest[k + i] ^= t[i];
    }
}

}  // namespace

int karatsuba_threshold_words() noexcept {
    return g_karatsuba_threshold.load(std::memory_order_relaxed);
}

void set_karatsuba_threshold_words(int words) {
    g_karatsuba_threshold.store(std::max(words, 1), std::memory_order_relaxed);
}

void mul_words_schoolbook(const std::uint64_t* a, std::size_t an,
                          const std::uint64_t* b, std::size_t bn,
                          std::uint64_t* dest) noexcept {
    school_mul_words(a, an, b, bn, dest);
}

void mul_words(const std::uint64_t* a, std::size_t an, const std::uint64_t* b,
               std::size_t bn, std::uint64_t* dest, MulArena& arena) {
    const auto threshold = static_cast<std::size_t>(karatsuba_threshold_words());
    if (std::min(an, bn) <= threshold) {
        school_mul_words(a, an, b, bn, dest);
        return;
    }
    std::uint64_t* scratch = arena.ensure(kara_scratch_words(std::max(an, bn), threshold));
    kara_mul_words(a, an, b, bn, dest, scratch, threshold);
}

void WordVec::grow(std::size_t n) {
    const std::size_t new_cap = std::max(n, cap_ * 2);
    auto* block = new std::uint64_t[new_cap];
    std::memcpy(block, ptr_, size_ * sizeof(std::uint64_t));
    if (ptr_ != inline_) {
        delete[] ptr_;
    }
    ptr_ = block;
    cap_ = new_cap;
}

void WordVec::grow_discard(std::size_t n) {
    const std::size_t new_cap = std::max(n, cap_ * 2);
    auto* block = new std::uint64_t[new_cap];
    if (ptr_ != inline_) {
        delete[] ptr_;
    }
    ptr_ = block;
    cap_ = new_cap;
}

void Poly::normalize() {
    while (!words_.empty() && words_.back() == 0) {
        words_.pop_back();
    }
}

Poly Poly::monomial(int degree) {
    if (degree < 0) {
        throw std::invalid_argument{"Poly::monomial: negative degree"};
    }
    Poly p;
    p.words_.assign(static_cast<std::size_t>(degree / kWordBits) + 1, 0);
    p.words_.back() = std::uint64_t{1} << (degree % kWordBits);
    return p;
}

Poly Poly::from_exponents(std::initializer_list<int> exponents) {
    return from_exponents(std::vector<int>{exponents});
}

Poly Poly::from_exponents(const std::vector<int>& exponents) {
    Poly p;
    for (const int e : exponents) {
        p.set_coeff(e, !p.coeff(e));  // duplicates cancel mod 2
    }
    return p;
}

Poly Poly::from_words(std::span<const std::uint64_t> words) {
    Poly p;
    p.words_.assign(words);
    p.normalize();
    return p;
}

Poly Poly::from_words(std::initializer_list<std::uint64_t> words) {
    return from_words(std::span<const std::uint64_t>{words.begin(), words.size()});
}

void Poly::assign_words(std::span<const std::uint64_t> words) {
    words_.assign(words);
    normalize();
}

bool Poly::is_one() const noexcept {
    return words_.size() == 1 && words_[0] == 1;
}

int Poly::degree() const noexcept {
    if (words_.empty()) {
        return -1;
    }
    const int top = static_cast<int>(words_.size()) - 1;
    return top * kWordBits + (kWordBits - 1 - std::countl_zero(words_.back()));
}

bool Poly::coeff(int k) const noexcept {
    if (k < 0) {
        return false;
    }
    const auto w = static_cast<std::size_t>(k / kWordBits);
    if (w >= words_.size()) {
        return false;
    }
    return (words_[w] >> (k % kWordBits)) & 1U;
}

void Poly::set_coeff(int k, bool value) {
    if (k < 0) {
        throw std::invalid_argument{"Poly::set_coeff: negative exponent"};
    }
    const auto w = static_cast<std::size_t>(k / kWordBits);
    if (value) {
        if (w >= words_.size()) {
            words_.resize(w + 1);
        }
        words_[w] |= std::uint64_t{1} << (k % kWordBits);
    } else if (w < words_.size()) {
        words_[w] &= ~(std::uint64_t{1} << (k % kWordBits));
        normalize();
    }
}

int Poly::weight() const noexcept {
    int count = 0;
    for (const auto w : words_) {
        count += std::popcount(w);
    }
    return count;
}

std::vector<int> Poly::support() const {
    std::vector<int> out;
    out.reserve(static_cast<std::size_t>(weight()));
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
        std::uint64_t w = words_[wi];
        while (w != 0) {
            const int bit = std::countr_zero(w);
            out.push_back(static_cast<int>(wi) * kWordBits + bit);
            w &= w - 1;
        }
    }
    return out;
}

Poly operator+(const Poly& a, const Poly& b) {
    Poly out = a;
    out += b;
    return out;
}

Poly& Poly::operator+=(const Poly& rhs) {
    if (rhs.words_.size() > words_.size()) {
        words_.resize(rhs.words_.size());
    }
    for (std::size_t i = 0; i < rhs.words_.size(); ++i) {
        words_[i] ^= rhs.words_[i];
    }
    normalize();
    return *this;
}

Poly operator<<(const Poly& a, int shift) {
    if (shift < 0) {
        throw std::invalid_argument{"Poly::operator<<: negative shift"};
    }
    if (a.is_zero() || shift == 0) {
        return a;
    }
    Poly out;
    out.add_shifted(a, shift);
    return out;
}

Poly operator>>(const Poly& a, int shift) {
    if (shift < 0) {
        throw std::invalid_argument{"Poly::operator>>: negative shift"};
    }
    Poly out;
    Poly::shr_into(a, shift, out);
    return out;
}

Poly operator*(const Poly& a, const Poly& b) {
    Poly out;
    Poly::mul_into(a, b, out);
    return out;
}

void Poly::add_shifted(const Poly& p, int shift) {
    if (shift < 0) {
        throw std::invalid_argument{"Poly::add_shifted: negative shift"};
    }
    if (p.is_zero()) {
        return;
    }
    const int ws = shift / kWordBits;
    const int bs = shift % kWordBits;
    const std::size_t need =
        p.words_.size() + static_cast<std::size_t>(ws) + (bs != 0 ? 1 : 0);
    if (words_.size() < need) {
        words_.resize(need);
    }
    for (std::size_t i = 0; i < p.words_.size(); ++i) {
        words_[i + static_cast<std::size_t>(ws)] ^= p.words_[i] << bs;
        if (bs != 0) {
            words_[i + static_cast<std::size_t>(ws) + 1] ^=
                p.words_[i] >> (kWordBits - bs);
        }
    }
    normalize();
}

void Poly::mul_into(const Poly& a, const Poly& b, Poly& out, MulArena& arena) {
    if (&out == &a || &out == &b) {
        Poly tmp;
        mul_into(a, b, tmp, arena);  // aliasing: fall back to a temporary
        out = std::move(tmp);
        return;
    }
    if (a.is_zero() || b.is_zero()) {
        out.words_.clear();
        return;
    }
    const std::size_t an = a.words_.size();
    const std::size_t bn = b.words_.size();
    out.words_.assign(an + bn, 0);
    mul_words(a.words_.data(), an, b.words_.data(), bn, out.words_.data(), arena);
    out.normalize();
}

void Poly::mul_into(const Poly& a, const Poly& b, Poly& out) {
    static thread_local MulArena arena;
    mul_into(a, b, out, arena);
}

void Poly::mul_schoolbook_into(const Poly& a, const Poly& b, Poly& out) {
    if (&out == &a || &out == &b) {
        Poly tmp;
        mul_schoolbook_into(a, b, tmp);
        out = std::move(tmp);
        return;
    }
    if (a.is_zero() || b.is_zero()) {
        out.words_.clear();
        return;
    }
    out.words_.assign(a.words_.size() + b.words_.size(), 0);
    school_mul_words(a.words_.data(), a.words_.size(), b.words_.data(),
                     b.words_.size(), out.words_.data());
    out.normalize();
}

void Poly::mul_comb_into(const Poly& a, const Poly& b, Poly& out) {
    if (&out == &a || &out == &b) {
        Poly tmp;
        mul_comb_into(a, b, tmp);
        out = std::move(tmp);
        return;
    }
    if (a.is_zero() || b.is_zero()) {
        out.words_.clear();
        return;
    }
    // Comb multiplication: for every set bit of a, XOR a shifted copy of b.
    // Work over raw words; out's capacity is reused across calls.
    const std::size_t out_words =
        static_cast<std::size_t>((a.degree() + b.degree()) / kWordBits) + 1;
    out.words_.assign(out_words + 1, 0);
    auto& acc = out.words_;
    for (std::size_t wi = 0; wi < a.words_.size(); ++wi) {
        std::uint64_t w = a.words_[wi];
        while (w != 0) {
            const int bit = std::countr_zero(w);
            w &= w - 1;
            const int shift = static_cast<int>(wi) * kWordBits + bit;
            const int ws = shift / kWordBits;
            const int bs = shift % kWordBits;
            for (std::size_t bj = 0; bj < b.words_.size(); ++bj) {
                acc[bj + static_cast<std::size_t>(ws)] ^= b.words_[bj] << bs;
                if (bs != 0) {
                    acc[bj + static_cast<std::size_t>(ws) + 1] ^=
                        b.words_[bj] >> (kWordBits - bs);
                }
            }
        }
    }
    out.normalize();
}

void Poly::square_into(const Poly& a, Poly& out) {
    using detail::spread32;
    if (&out == &a) {
        Poly tmp;
        square_into(a, tmp);
        out = std::move(tmp);
        return;
    }
    out.words_.assign(a.words_.size() * 2, 0);
    for (std::size_t i = 0; i < a.words_.size(); ++i) {
        const std::uint64_t w = a.words_[i];
        out.words_[2 * i] = spread32(static_cast<std::uint32_t>(w));
        out.words_[2 * i + 1] = spread32(static_cast<std::uint32_t>(w >> 32));
    }
    out.normalize();
}

void Poly::shr_into(const Poly& a, int shift, Poly& out) {
    if (shift < 0) {
        throw std::invalid_argument{"Poly::shr_into: negative shift"};
    }
    const int word_shift = shift / kWordBits;
    const int bit_shift = shift % kWordBits;
    if (static_cast<std::size_t>(word_shift) >= a.words_.size()) {
        out.words_.clear();
        return;
    }
    out.words_.resize(a.words_.size() - static_cast<std::size_t>(word_shift));
    for (std::size_t i = 0; i < out.words_.size(); ++i) {
        out.words_[i] = a.words_[i + static_cast<std::size_t>(word_shift)] >> bit_shift;
        if (bit_shift != 0 && i + static_cast<std::size_t>(word_shift) + 1 < a.words_.size()) {
            out.words_[i] ^= a.words_[i + static_cast<std::size_t>(word_shift) + 1]
                             << (kWordBits - bit_shift);
        }
    }
    out.normalize();
}

void Poly::truncate(int bits) {
    if (bits <= 0) {
        words_.clear();
        return;
    }
    const auto keep_words = static_cast<std::size_t>((bits + kWordBits - 1) / kWordBits);
    if (words_.size() > keep_words) {
        words_.resize(keep_words);
    }
    const int top = bits % kWordBits;
    if (top != 0 && words_.size() == keep_words) {
        words_.back() &= (std::uint64_t{1} << top) - 1;
    }
    normalize();
}

void Poly::assign_word(std::uint64_t word) {
    if (word == 0) {
        words_.clear();
        return;
    }
    words_.resize(1);
    words_[0] = word;
}

Poly Poly::square() const {
    // Squaring over GF(2) interleaves each coefficient bit with a zero bit.
    Poly out;
    for (const int e : support()) {
        out.set_coeff(2 * e, true);
    }
    return out;
}

void Poly::divmod_inplace(Poly& rem, const Poly& den, Poly* quot) {
    if (den.is_zero()) {
        throw std::invalid_argument{"Poly::divmod: division by zero polynomial"};
    }
    if (quot != nullptr) {
        quot->words_.clear();
    }
    const int dd = den.degree();
    int rd = rem.degree();
    while (rd >= dd) {
        const int shift = rd - dd;
        if (quot != nullptr) {
            quot->set_coeff(shift, true);
        }
        rem.add_shifted(den, shift);  // in-place; no den << shift temporary
        rd = rem.degree();
    }
}

std::pair<Poly, Poly> Poly::divmod(const Poly& num, const Poly& den) {
    Poly rem = num;
    Poly quot;
    divmod_inplace(rem, den, &quot);
    return {std::move(quot), std::move(rem)};
}

Poly operator%(const Poly& a, const Poly& b) { return Poly::divmod(a, b).second; }

Poly operator/(const Poly& a, const Poly& b) { return Poly::divmod(a, b).first; }

Poly Poly::gcd(Poly a, Poly b) {
    while (!b.is_zero()) {
        Poly r = a % b;
        a = std::move(b);
        b = std::move(r);
    }
    return a;
}

Poly Poly::mulmod(const Poly& a, const Poly& b, const Poly& f) {
    return (a * b) % f;
}

Poly Poly::sqrmod(const Poly& a, const Poly& f) { return a.square() % f; }

Poly Poly::pow2k_mod(const Poly& a, int k, const Poly& f) {
    if (k < 0) {
        throw std::invalid_argument{"Poly::pow2k_mod: negative k"};
    }
    Poly acc = a % f;
    for (int i = 0; i < k; ++i) {
        acc = sqrmod(acc, f);
    }
    return acc;
}

std::string Poly::to_string() const {
    if (is_zero()) {
        return "0";
    }
    std::string out;
    const auto exps = support();
    for (auto it = exps.rbegin(); it != exps.rend(); ++it) {
        if (!out.empty()) {
            out += " + ";
        }
        if (*it == 0) {
            out += "1";
        } else if (*it == 1) {
            out += "y";
        } else {
            out += "y^" + std::to_string(*it);
        }
    }
    return out;
}

}  // namespace gfr::gf2
