#ifndef GFR_GF2_PENTANOMIAL_H
#define GFR_GF2_PENTANOMIAL_H

// Type II irreducible pentanomials  f(y) = y^m + y^(n+2) + y^(n+1) + y^n + 1,
// with 2 <= n <= floor(m/2) - 1  (definition from Rodriguez-Henriquez & Koc,
// used throughout the paper).  These generate all five NIST ECDSA binary
// fields and are the irreducible polynomials the DATE 2018 multipliers target.

#include "gf2/gf2_poly.h"

#include <optional>
#include <vector>

namespace gfr::gf2 {

/// A type II pentanomial parameterised by (m, n).  Only well-formed parameter
/// pairs can be constructed; irreducibility is a separate question.
struct TypeIIPentanomial {
    int m = 0;
    int n = 0;

    /// True iff 2 <= n <= floor(m/2) - 1 and m >= 6 (smallest m admitting n=2).
    static bool valid_parameters(int m, int n);

    /// The polynomial y^m + y^(n+2) + y^(n+1) + y^n + 1.
    [[nodiscard]] Poly poly() const;
};

/// True iff (m, n) is a valid type II pentanomial AND irreducible over GF(2).
bool is_type2_irreducible(int m, int n);

/// All n for which the type II pentanomial of degree m is irreducible,
/// ascending.  Empty when none exists for this m.
std::vector<int> type2_irreducible_ns(int m);

/// The smallest irreducible type II pentanomial of degree m, if any.
std::optional<TypeIIPentanomial> first_type2_irreducible(int m);

/// Type I pentanomial f(y) = y^m + y^(n+1) + y^n + y + 1 (Rodriguez-Henriquez
/// & Koc [5], the companion family to type II).
struct TypeIPentanomial {
    int m = 0;
    int n = 0;

    /// True iff 2 <= n <= m-3 (distinct exponents m > n+1 > n > 1 > 0).
    static bool valid_parameters(int m, int n);

    [[nodiscard]] Poly poly() const;
};

/// True iff (m, n) is a valid type I pentanomial AND irreducible over GF(2).
bool is_type1_irreducible(int m, int n);

/// All n for which the type I pentanomial of degree m is irreducible.
std::vector<int> type1_irreducible_ns(int m);

/// Irreducible trinomials y^m + y^k + 1 of degree m: all valid k ascending
/// (empty when degree m has none — e.g. every multiple of 8).
std::vector<int> irreducible_trinomial_ks(int m);

/// The lowest-weight irreducible polynomial of degree m following the usual
/// selection order: trinomial with smallest k, else type II pentanomial with
/// smallest n, else type I, else nullopt.  (Standards bodies pick moduli the
/// same way.)
std::optional<Poly> preferred_low_weight_modulus(int m);

}  // namespace gfr::gf2

#endif  // GFR_GF2_PENTANOMIAL_H
