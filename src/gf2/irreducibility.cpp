#include "gf2/irreducibility.h"

#include <stdexcept>

namespace gfr::gf2 {

std::vector<int> distinct_prime_factors(int n) {
    if (n < 1) {
        throw std::invalid_argument{"distinct_prime_factors: n must be >= 1"};
    }
    std::vector<int> out;
    for (int p = 2; static_cast<long long>(p) * p <= n; ++p) {
        if (n % p == 0) {
            out.push_back(p);
            while (n % p == 0) {
                n /= p;
            }
        }
    }
    if (n > 1) {
        out.push_back(n);
    }
    return out;
}

bool is_irreducible(const Poly& f) {
    const int m = f.degree();
    if (m <= 0) {
        return false;
    }
    if (m == 1) {
        return true;
    }
    // A polynomial with zero constant term is divisible by y; an even-weight
    // polynomial is divisible by (y + 1).  Cheap rejections first.
    if (!f.coeff(0) || f.weight() % 2 == 0) {
        return false;
    }

    const Poly y = Poly::monomial(1);

    // Condition (1): y^(2^m) == y mod f.
    if (Poly::pow2k_mod(y, m, f) != y % f) {
        return false;
    }
    // Condition (2): no factor of degree dividing m/p survives.
    for (const int p : distinct_prime_factors(m)) {
        const Poly g = Poly::pow2k_mod(y, m / p, f) + y;
        if (!Poly::gcd(g, f).is_one()) {
            return false;
        }
    }
    return true;
}

}  // namespace gfr::gf2
