#include "gf2/pentanomial.h"

#include "gf2/irreducibility.h"

#include <stdexcept>

namespace gfr::gf2 {

bool TypeIIPentanomial::valid_parameters(int m, int n) {
    return m >= 6 && n >= 2 && n <= m / 2 - 1;
}

Poly TypeIIPentanomial::poly() const {
    if (!valid_parameters(m, n)) {
        throw std::invalid_argument{"TypeIIPentanomial: invalid (m, n) parameters"};
    }
    return Poly::from_exponents({m, n + 2, n + 1, n, 0});
}

bool is_type2_irreducible(int m, int n) {
    if (!TypeIIPentanomial::valid_parameters(m, n)) {
        return false;
    }
    return is_irreducible(TypeIIPentanomial{m, n}.poly());
}

std::vector<int> type2_irreducible_ns(int m) {
    std::vector<int> out;
    for (int n = 2; n <= m / 2 - 1; ++n) {
        if (is_type2_irreducible(m, n)) {
            out.push_back(n);
        }
    }
    return out;
}

std::optional<TypeIIPentanomial> first_type2_irreducible(int m) {
    for (int n = 2; n <= m / 2 - 1; ++n) {
        if (is_type2_irreducible(m, n)) {
            return TypeIIPentanomial{m, n};
        }
    }
    return std::nullopt;
}

bool TypeIPentanomial::valid_parameters(int m, int n) {
    return n >= 2 && n <= m - 3;
}

Poly TypeIPentanomial::poly() const {
    if (!valid_parameters(m, n)) {
        throw std::invalid_argument{"TypeIPentanomial: invalid (m, n) parameters"};
    }
    return Poly::from_exponents({m, n + 1, n, 1, 0});
}

bool is_type1_irreducible(int m, int n) {
    if (!TypeIPentanomial::valid_parameters(m, n)) {
        return false;
    }
    return is_irreducible(TypeIPentanomial{m, n}.poly());
}

std::vector<int> type1_irreducible_ns(int m) {
    std::vector<int> out;
    for (int n = 2; n <= m - 3; ++n) {
        if (is_type1_irreducible(m, n)) {
            out.push_back(n);
        }
    }
    return out;
}

std::vector<int> irreducible_trinomial_ks(int m) {
    std::vector<int> out;
    for (int k = 1; k <= m - 1; ++k) {
        if (is_irreducible(Poly::from_exponents({m, k, 0}))) {
            out.push_back(k);
        }
    }
    return out;
}

std::optional<Poly> preferred_low_weight_modulus(int m) {
    if (m < 2) {
        return std::nullopt;
    }
    const auto tri = irreducible_trinomial_ks(m);
    if (!tri.empty()) {
        return Poly::from_exponents({m, tri.front(), 0});
    }
    if (const auto penta2 = first_type2_irreducible(m)) {
        return penta2->poly();
    }
    const auto penta1 = type1_irreducible_ns(m);
    if (!penta1.empty()) {
        return TypeIPentanomial{m, penta1.front()}.poly();
    }
    return std::nullopt;
}

}  // namespace gfr::gf2
