#ifndef GFR_GF2_GF2_POLY_H
#define GFR_GF2_GF2_POLY_H

// Dense polynomials over GF(2).
//
// A polynomial f(y) = sum f_k y^k with f_k in {0,1} is stored as a little-endian
// bit vector: bit (k % 64) of word (k / 64) holds f_k.  All arithmetic is
// carry-less: addition is XOR, multiplication is the shift-and-XOR "comb".
//
// This is the base substrate for everything above it: field reduction,
// Mastrovito matrices, irreducibility testing and the pentanomial catalog.

#include <cstdint>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

namespace gfr::gf2 {

/// Immutable-by-convention dense GF(2)[y] polynomial.
///
/// Invariant: words_ has no trailing zero word, so degree() is O(1) on the
/// last word and equality is plain vector comparison.  The zero polynomial is
/// the empty word vector and has degree() == -1.
class Poly {
public:
    /// The zero polynomial.
    Poly() = default;

    /// y^degree.  Requires degree >= 0.
    static Poly monomial(int degree);

    /// The constant 1.
    static Poly one() { return monomial(0); }

    /// Polynomial with exactly the listed exponents set, e.g. {8,4,3,2,0}.
    /// Duplicate exponents cancel (mod-2 semantics).
    static Poly from_exponents(std::initializer_list<int> exponents);
    static Poly from_exponents(const std::vector<int>& exponents);

    /// Build from raw little-endian words (trailing zeros allowed; normalised).
    static Poly from_words(std::vector<std::uint64_t> words);

    [[nodiscard]] bool is_zero() const noexcept { return words_.empty(); }
    [[nodiscard]] bool is_one() const noexcept;

    /// Degree of the polynomial; -1 for the zero polynomial.
    [[nodiscard]] int degree() const noexcept;

    /// Coefficient of y^k (k may exceed degree; such coefficients are 0).
    [[nodiscard]] bool coeff(int k) const noexcept;

    /// Set/clear the coefficient of y^k.
    void set_coeff(int k, bool value);

    /// Number of nonzero coefficients.
    [[nodiscard]] int weight() const noexcept;

    /// Exponents with nonzero coefficient, ascending.
    [[nodiscard]] std::vector<int> support() const;

    /// Raw words, little-endian, normalised (no trailing zero word).
    [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept { return words_; }

    // --- Ring operations -------------------------------------------------

    friend Poly operator+(const Poly& a, const Poly& b);   // XOR of coefficients
    Poly& operator+=(const Poly& rhs);

    friend Poly operator*(const Poly& a, const Poly& b);   // carry-less product

    friend Poly operator<<(const Poly& a, int shift);      // multiply by y^shift
    friend Poly operator>>(const Poly& a, int shift);      // drop low terms

    friend bool operator==(const Poly& a, const Poly& b) = default;

    /// Square in GF(2)[y]: interleave coefficients with zeros (Frobenius).
    [[nodiscard]] Poly square() const;

    /// Quotient and remainder of num / den.  Requires den != 0.
    static std::pair<Poly, Poly> divmod(const Poly& num, const Poly& den);

    friend Poly operator%(const Poly& a, const Poly& b);
    friend Poly operator/(const Poly& a, const Poly& b);

    /// Greatest common divisor (monic by construction over GF(2)).
    static Poly gcd(Poly a, Poly b);

    /// a * b mod f.  Requires f != 0.
    static Poly mulmod(const Poly& a, const Poly& b, const Poly& f);

    /// a^2 mod f.
    static Poly sqrmod(const Poly& a, const Poly& f);

    /// a^(2^k) mod f via k modular squarings (the Frobenius power used by
    /// the Rabin irreducibility test).
    static Poly pow2k_mod(const Poly& a, int k, const Poly& f);

    /// Human-readable form, e.g. "y^8 + y^4 + y^3 + y^2 + 1"; "0" when zero.
    [[nodiscard]] std::string to_string() const;

private:
    void normalize();

    std::vector<std::uint64_t> words_;
};

}  // namespace gfr::gf2

#endif  // GFR_GF2_GF2_POLY_H
