#ifndef GFR_GF2_GF2_POLY_H
#define GFR_GF2_GF2_POLY_H

// Dense polynomials over GF(2).
//
// A polynomial f(y) = sum f_k y^k with f_k in {0,1} is stored as a little-endian
// bit vector: bit (k % 64) of word (k / 64) holds f_k.  All arithmetic is
// carry-less: addition is XOR, multiplication is the shift-and-XOR "comb".
//
// This is the base substrate for everything above it: field reduction,
// Mastrovito matrices, irreducibility testing and the pentanomial catalog.

#include <array>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace gfr::gf2 {

namespace detail {

/// Bit-interleave table: byte abcdefgh -> 16-bit a0b0c0d0e0f0g0h0.  Shared by
/// Poly::square_into and the field engine's single-word squaring.
inline constexpr auto kSpread8 = [] {
    std::array<std::uint16_t, 256> table{};
    for (int v = 0; v < 256; ++v) {
        std::uint16_t s = 0;
        for (int bit = 0; bit < 8; ++bit) {
            if ((v >> bit) & 1) {
                s = static_cast<std::uint16_t>(s | (1U << (2 * bit)));
            }
        }
        table[static_cast<std::size_t>(v)] = s;
    }
    return table;
}();

/// Interleave the 32 bits of x with zeros into 64 bits (GF(2) squaring).
inline constexpr std::uint64_t spread32(std::uint32_t x) noexcept {
    return static_cast<std::uint64_t>(kSpread8[x & 0xFF]) |
           (static_cast<std::uint64_t>(kSpread8[(x >> 8) & 0xFF]) << 16) |
           (static_cast<std::uint64_t>(kSpread8[(x >> 16) & 0xFF]) << 32) |
           (static_cast<std::uint64_t>(kSpread8[(x >> 24) & 0xFF]) << 48);
}

}  // namespace detail

/// Small-buffer word storage for Poly.
///
/// Up to kInlineWords words live inside the object, so field elements of
/// every m <= 256 field — and single-word products before reduction — never
/// touch the heap.  Longer polynomials spill to a heap block with amortised
/// doubling, like std::vector.  resize() zero-fills grown words.
class WordVec {
public:
    static constexpr std::size_t kInlineWords = 4;

    // NOLINTNEXTLINE: user-provided (not defaulted) so `const Poly p;` is
    // well-formed without zeroing the inline buffer.
    WordVec() noexcept {}
    WordVec(const WordVec& other) { assign_from(other); }
    WordVec(WordVec&& other) noexcept { steal_from(other); }
    WordVec& operator=(const WordVec& other) {
        if (this != &other) {
            assign_from(other);
        }
        return *this;
    }
    WordVec& operator=(WordVec&& other) noexcept {
        if (this != &other) {
            release();
            steal_from(other);
        }
        return *this;
    }
    ~WordVec() { release(); }

    [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
    [[nodiscard]] std::size_t size() const noexcept { return size_; }
    [[nodiscard]] std::uint64_t* data() noexcept { return ptr_; }
    [[nodiscard]] const std::uint64_t* data() const noexcept { return ptr_; }
    std::uint64_t& operator[](std::size_t i) noexcept { return ptr_[i]; }
    std::uint64_t operator[](std::size_t i) const noexcept { return ptr_[i]; }
    [[nodiscard]] std::uint64_t& back() noexcept { return ptr_[size_ - 1]; }
    [[nodiscard]] std::uint64_t back() const noexcept { return ptr_[size_ - 1]; }
    [[nodiscard]] std::uint64_t* begin() noexcept { return ptr_; }
    [[nodiscard]] std::uint64_t* end() noexcept { return ptr_ + size_; }
    [[nodiscard]] const std::uint64_t* begin() const noexcept { return ptr_; }
    [[nodiscard]] const std::uint64_t* end() const noexcept { return ptr_ + size_; }

    void clear() noexcept { size_ = 0; }
    void pop_back() noexcept { --size_; }

    /// Grow (zero-filling the new words) or shrink to n words.
    void resize(std::size_t n) {
        if (n > cap_) {
            grow(n);
        }
        if (n > size_) {
            std::memset(ptr_ + size_, 0, (n - size_) * sizeof(std::uint64_t));
        }
        size_ = n;
    }

    /// Become n copies of value.
    void assign(std::size_t n, std::uint64_t value) {
        if (n > cap_) {
            grow_discard(n);
        }
        if (value == 0) {
            std::memset(ptr_, 0, n * sizeof(std::uint64_t));
        } else {
            for (std::size_t i = 0; i < n; ++i) {
                ptr_[i] = value;
            }
        }
        size_ = n;
    }

    /// Become a copy of the given words.
    void assign(std::span<const std::uint64_t> words) {
        if (words.size() > cap_) {
            grow_discard(words.size());
        }
        std::memmove(ptr_, words.data(), words.size() * sizeof(std::uint64_t));
        size_ = words.size();
    }

    friend bool operator==(const WordVec& a, const WordVec& b) noexcept {
        return a.size_ == b.size_ &&
               std::memcmp(a.ptr_, b.ptr_, a.size_ * sizeof(std::uint64_t)) == 0;
    }

private:
    void release() noexcept {
        if (ptr_ != inline_) {
            delete[] ptr_;
        }
        ptr_ = inline_;
        cap_ = kInlineWords;
        size_ = 0;
    }
    void assign_from(const WordVec& other) {
        if (other.size_ > cap_) {
            grow_discard(other.size_);
        }
        std::memcpy(ptr_, other.ptr_, other.size_ * sizeof(std::uint64_t));
        size_ = other.size_;
    }
    void steal_from(WordVec& other) noexcept {
        if (other.ptr_ != other.inline_) {
            ptr_ = other.ptr_;
            cap_ = other.cap_;
            size_ = other.size_;
            other.ptr_ = other.inline_;
            other.cap_ = kInlineWords;
        } else {
            ptr_ = inline_;
            cap_ = kInlineWords;
            size_ = other.size_;
            std::memcpy(inline_, other.inline_, other.size_ * sizeof(std::uint64_t));
        }
        other.size_ = 0;
    }
    void grow(std::size_t n);          // preserves contents
    void grow_discard(std::size_t n);  // contents unspecified afterwards

    std::size_t size_ = 0;
    std::size_t cap_ = kInlineWords;
    std::uint64_t* ptr_ = inline_;
    std::uint64_t inline_[kInlineWords];
};

/// Reusable scratch arena for the word-level product kernels.
///
/// The Karatsuba layer in Poly::mul_into needs O(n) words of working space
/// for the split-operand sums and intermediate products.  An arena is one
/// growable word buffer handed down the recursion, so steady-state multiplies
/// allocate nothing once the arena has seen the largest operand size.
/// An arena holds no per-modulus or per-operand state: one instance can be
/// reused across arbitrary multiplies, but must not be shared between
/// threads (each thread should own one, or use the thread-local default).
class MulArena {
public:
    /// Pointer to at least `words` words of scratch (contents unspecified).
    std::uint64_t* ensure(std::size_t words) {
        if (words > buf_.size()) {
            buf_.resize(words);
        }
        return buf_.data();
    }

    [[nodiscard]] std::size_t capacity_words() const noexcept { return buf_.size(); }

private:
    WordVec buf_;
};

/// Operand size (in 64-bit words) below which Poly::mul_into uses the plain
/// word-level schoolbook instead of recursing with Karatsuba.  The default is
/// tuned by bench/microbench_field (see BENCH_2.json); tests and benches may
/// override it process-wide to force either path or probe the boundary.
[[nodiscard]] int karatsuba_threshold_words() noexcept;
void set_karatsuba_threshold_words(int words);

// --- Raw word-span products --------------------------------------------------
// The kernels under Poly::mul_into, exposed over bare spans for callers that
// manage their own word buffers (the field engine's inversion chain).  Both
// XOR the product of (a, an words) x (b, bn words) into dest, which the
// caller supplies zeroed with an + bn words.

/// Word-level schoolbook only: one carry-less 64x64 product per word pair.
void mul_words_schoolbook(const std::uint64_t* a, std::size_t an,
                          const std::uint64_t* b, std::size_t bn,
                          std::uint64_t* dest) noexcept;

/// Schoolbook with the Karatsuba layer above karatsuba_threshold_words();
/// recursion scratch comes from `arena`.
void mul_words(const std::uint64_t* a, std::size_t an, const std::uint64_t* b,
               std::size_t bn, std::uint64_t* dest, MulArena& arena);

/// Immutable-by-convention dense GF(2)[y] polynomial.
///
/// Invariant: words_ has no trailing zero word, so degree() is O(1) on the
/// last word and equality is plain word comparison.  The zero polynomial is
/// the empty word vector and has degree() == -1.
class Poly {
public:
    /// The zero polynomial.
    Poly() = default;

    /// y^degree.  Requires degree >= 0.
    static Poly monomial(int degree);

    /// The constant 1.
    static Poly one() { return monomial(0); }

    /// Polynomial with exactly the listed exponents set, e.g. {8,4,3,2,0}.
    /// Duplicate exponents cancel (mod-2 semantics).
    static Poly from_exponents(std::initializer_list<int> exponents);
    static Poly from_exponents(const std::vector<int>& exponents);

    /// Build from raw little-endian words (trailing zeros allowed; normalised).
    static Poly from_words(std::span<const std::uint64_t> words);
    static Poly from_words(std::initializer_list<std::uint64_t> words);

    [[nodiscard]] bool is_zero() const noexcept { return words_.empty(); }
    [[nodiscard]] bool is_one() const noexcept;

    /// Degree of the polynomial; -1 for the zero polynomial.
    [[nodiscard]] int degree() const noexcept;

    /// Coefficient of y^k (k may exceed degree; such coefficients are 0).
    [[nodiscard]] bool coeff(int k) const noexcept;

    /// Set/clear the coefficient of y^k.
    void set_coeff(int k, bool value);

    /// Number of nonzero coefficients.
    [[nodiscard]] int weight() const noexcept;

    /// Exponents with nonzero coefficient, ascending.
    [[nodiscard]] std::vector<int> support() const;

    /// Raw words, little-endian, normalised (no trailing zero word).
    [[nodiscard]] std::span<const std::uint64_t> words() const noexcept {
        return {words_.data(), words_.size()};
    }

    /// Become the polynomial with the given raw words (trailing zeros
    /// allowed; normalised), reusing capacity.  The allocation-free sibling
    /// of from_words for hot paths that own a scratch word buffer.
    void assign_words(std::span<const std::uint64_t> words);

    // --- Ring operations -------------------------------------------------

    friend Poly operator+(const Poly& a, const Poly& b);   // XOR of coefficients
    Poly& operator+=(const Poly& rhs);

    friend Poly operator*(const Poly& a, const Poly& b);   // carry-less product

    friend Poly operator<<(const Poly& a, int shift);      // multiply by y^shift
    friend Poly operator>>(const Poly& a, int shift);      // drop low terms

    friend bool operator==(const Poly& a, const Poly& b) = default;

    /// Square in GF(2)[y]: interleave coefficients with zeros (Frobenius).
    [[nodiscard]] Poly square() const;

    // --- Allocation-free kernels -----------------------------------------
    //
    // These mutate word storage in place (or reuse the capacity of an output
    // polynomial across calls), so hot loops — field reduction, modular
    // exponentiation, verification sweeps — stop churning the allocator.
    // Output parameters must not alias the inputs unless stated otherwise.

    /// *this += p * y^shift, without materialising the shifted copy.
    /// Grows storage only when the result outgrows current capacity.
    void add_shifted(const Poly& p, int shift);

    /// out = a * b reusing out's capacity.  One carry-less 64x64 product per
    /// word pair (word-level schoolbook), with a Karatsuba layer on
    /// word-aligned splits once both operands exceed
    /// karatsuba_threshold_words().  Scratch for the Karatsuba recursion
    /// comes from `arena`; in steady state (arena warmed, out capacity
    /// sufficient) the call does not allocate.  out may alias neither a nor b
    /// (checked; falls back to a temporary if it does).
    static void mul_into(const Poly& a, const Poly& b, Poly& out, MulArena& arena);

    /// mul_into using a thread-local default arena.
    static void mul_into(const Poly& a, const Poly& b, Poly& out);

    /// out = a * b via word-level schoolbook only (no Karatsuba layer) — the
    /// PR-1 engine product, kept callable for crossover benching and for
    /// boundary tests pinning the Karatsuba layer to it.
    static void mul_schoolbook_into(const Poly& a, const Poly& b, Poly& out);

    /// out = a * b via the bit-serial shift-and-XOR comb.  Deliberately
    /// shares no code with the word-level kernels (no clmul, no Karatsuba):
    /// this is the independent reference product that differential tests and
    /// Field::mul_reference cross-check the fast paths against, in the spirit
    /// of formal GF(2^m) verification work (Yu & Ciesielski).
    static void mul_comb_into(const Poly& a, const Poly& b, Poly& out);

    /// out = a * a reusing out's capacity.  out must not alias a.
    static void square_into(const Poly& a, Poly& out);

    /// out = a >> shift reusing out's capacity.  out must not alias a.
    static void shr_into(const Poly& a, int shift, Poly& out);

    /// Drop all coefficients with exponent >= bits (keep the low `bits`).
    void truncate(int bits);

    /// Become the single-word polynomial with bit pattern `word`, reusing
    /// capacity.  The workhorse of the m <= 64 fast field path.
    void assign_word(std::uint64_t word);

    /// In-place division: rem becomes rem mod den; if quot is non-null it
    /// receives the quotient.  The remainder is shift-XORed in place — no
    /// per-iteration temporaries (the seed allocated den << shift each loop).
    /// Requires den != 0; quot must not alias rem or den.
    static void divmod_inplace(Poly& rem, const Poly& den, Poly* quot = nullptr);

    /// Quotient and remainder of num / den.  Requires den != 0.
    static std::pair<Poly, Poly> divmod(const Poly& num, const Poly& den);

    friend Poly operator%(const Poly& a, const Poly& b);
    friend Poly operator/(const Poly& a, const Poly& b);

    /// Greatest common divisor (monic by construction over GF(2)).
    static Poly gcd(Poly a, Poly b);

    /// a * b mod f.  Requires f != 0.
    static Poly mulmod(const Poly& a, const Poly& b, const Poly& f);

    /// a^2 mod f.
    static Poly sqrmod(const Poly& a, const Poly& f);

    /// a^(2^k) mod f via k modular squarings (the Frobenius power used by
    /// the Rabin irreducibility test).
    static Poly pow2k_mod(const Poly& a, int k, const Poly& f);

    /// Human-readable form, e.g. "y^8 + y^4 + y^3 + y^2 + 1"; "0" when zero.
    [[nodiscard]] std::string to_string() const;

private:
    void normalize();

    WordVec words_;
};

}  // namespace gfr::gf2

#endif  // GFR_GF2_GF2_POLY_H
