#ifndef GFR_GF2_CLMUL_H
#define GFR_GF2_CLMUL_H

// 64x64 -> 128 carry-less multiply, the word-level primitive under both the
// fixed-modulus field engine (field::FieldOps) and the Poly word-level
// product kernels.  Lives in gf2 so the polynomial layer can use it without
// depending on the field layer above it.
//
// Compiled with GFR_USE_PCLMUL on x86 this is a single PCLMULQDQ; otherwise a
// portable comb over the set bits of the sparser operand.

#include <bit>
#include <cstdint>
#include <utility>

#if defined(GFR_USE_PCLMUL) && defined(__PCLMUL__)
#include <wmmintrin.h>
#endif

namespace gfr::gf2::detail {

/// 64x64 -> 128 carry-less multiply.  Header-inline so the single-word field
/// operations and the word-level product kernels fold it into their callers.
inline void clmul64(std::uint64_t a, std::uint64_t b, std::uint64_t& hi,
                    std::uint64_t& lo) noexcept {
#if defined(GFR_USE_PCLMUL) && defined(__PCLMUL__)
    const __m128i va = _mm_cvtsi64_si128(static_cast<long long>(a));
    const __m128i vb = _mm_cvtsi64_si128(static_cast<long long>(b));
    const __m128i prod = _mm_clmulepi64_si128(va, vb, 0x00);
    lo = static_cast<std::uint64_t>(_mm_cvtsi128_si64(prod));
    // High half via SSE2 unpack (avoids an SSE4.1 dependency for the extract).
    hi = static_cast<std::uint64_t>(_mm_cvtsi128_si64(_mm_unpackhi_epi64(prod, prod)));
#else
    // Portable comb over the set bits of the sparser operand.
    if (std::popcount(b) > std::popcount(a)) {
        std::swap(a, b);
    }
    hi = 0;
    lo = 0;
    while (b != 0) {
        const int k = std::countr_zero(b);
        b &= b - 1;
        lo ^= a << k;
        if (k != 0) {
            hi ^= a >> (64 - k);
        }
    }
#endif
}

}  // namespace gfr::gf2::detail

#endif  // GFR_GF2_CLMUL_H
