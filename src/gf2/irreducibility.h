#ifndef GFR_GF2_IRREDUCIBILITY_H
#define GFR_GF2_IRREDUCIBILITY_H

// Irreducibility testing for polynomials over GF(2).
//
// Uses Rabin's test: f of degree m is irreducible over GF(2) iff
//   (1) y^(2^m) == y (mod f), and
//   (2) gcd(y^(2^(m/p)) - y mod f, f) == 1 for every prime divisor p of m.
//
// All five NIST ECDSA binary fields and the paper's nine (m,n) fields are
// validated through this test in the test suite.

#include "gf2/gf2_poly.h"

#include <vector>

namespace gfr::gf2 {

/// Distinct prime factors of n, ascending.  Requires n >= 1.
std::vector<int> distinct_prime_factors(int n);

/// True iff f is irreducible over GF(2).  Degree-0 and degree-1 cases follow
/// the usual convention: constants are not irreducible; y and y+1 are.
bool is_irreducible(const Poly& f);

}  // namespace gfr::gf2

#endif  // GFR_GF2_IRREDUCIBILITY_H
