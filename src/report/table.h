#ifndef GFR_REPORT_TABLE_H
#define GFR_REPORT_TABLE_H

// Minimal fixed-width ASCII table rendering for the bench binaries, so every
// reproduced table prints in a shape directly comparable to the paper.

#include <string>
#include <vector>

namespace gfr::report {

class TextTable {
public:
    explicit TextTable(std::vector<std::string> headers);

    void add_row(std::vector<std::string> cells);

    /// Insert a horizontal rule before the next added row.
    void add_rule();

    [[nodiscard]] std::string render() const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;  // empty row = rule
};

/// Fixed-point formatting helper ("9.77", "322.41").
std::string fmt(double value, int decimals);

/// Relative-change formatting for before/after columns: "-15.3%" when
/// `after` improved on `before`, "+2.1%" when it regressed, "0.0%" when
/// unchanged or `before` is zero.  Used by the optimization benches so
/// Table V deltas read uniformly.
std::string fmt_delta_pct(double before, double after, int decimals = 1);

}  // namespace gfr::report

#endif  // GFR_REPORT_TABLE_H
