#include "report/table.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace gfr::report {

TextTable::TextTable(std::vector<std::string> headers) : headers_{std::move(headers)} {
    if (headers_.empty()) {
        throw std::invalid_argument{"TextTable: need at least one column"};
    }
}

void TextTable::add_row(std::vector<std::string> cells) {
    if (cells.size() != headers_.size()) {
        throw std::invalid_argument{"TextTable::add_row: wrong cell count"};
    }
    rows_.push_back(std::move(cells));
}

void TextTable::add_rule() { rows_.emplace_back(); }

std::string TextTable::render() const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        width[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            width[c] = std::max(width[c], row[c].size());
        }
    }
    auto rule = [&] {
        std::string line = "+";
        for (const auto w : width) {
            line += std::string(w + 2, '-') + "+";
        }
        return line + "\n";
    };
    auto render_row = [&](const std::vector<std::string>& row) {
        std::string line = "|";
        for (std::size_t c = 0; c < row.size(); ++c) {
            line += " " + row[c] + std::string(width[c] - row[c].size(), ' ') + " |";
        }
        return line + "\n";
    };
    std::string out = rule() + render_row(headers_) + rule();
    for (const auto& row : rows_) {
        out += row.empty() ? rule() : render_row(row);
    }
    out += rule();
    return out;
}

std::string fmt(double value, int decimals) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
    return buf;
}

std::string fmt_delta_pct(double before, double after, int decimals) {
    if (before == 0.0 || before == after) {
        return fmt(0.0, decimals) + "%";
    }
    const double pct = (after - before) / before * 100.0;
    return (pct > 0.0 ? "+" : "") + fmt(pct, decimals) + "%";
}

}  // namespace gfr::report
