#ifndef GFR_FPGA_TIMING_MODEL_H
#define GFR_FPGA_TIMING_MODEL_H

// Post-place-and-route timing model for the mapped LUT network.
//
// The paper reports critical paths from Xilinx ISE post-P&R on Artix-7
// (combinational multipliers, pad to pad).  We model:
//
//   arrival(input)  = t_io_in
//   arrival(lut)    = max over fanins f of
//                       ( arrival(f) + net_delay(fanout(f)) ) + t_lut
//   path delay      = max over outputs ( arrival(o) + net_delay(1) + t_io_out )
//   net_delay(fo)   = ( t_net_base + t_net_fanout * log2(1 + fo) ) * congestion
//   congestion      = 1 + congestion_factor * log2(max(1, LUTs / ref_luts))
//
// Rationale: net delay grows with fanout (more loads, longer routes) and
// with design size (congestion / longer average routes); IO dominates tiny
// designs, matching the ~9.8 ns floor of the paper's (8,2) rows.
//
// CALIBRATION (DESIGN.md section 7): the constants below were fixed ONCE so
// the proposed multiplier lands near the paper's 9.77 ns at (8,2) and
// ~22 ns at (163,·), then reused unchanged for every method and every field.
// All cross-method comparisons are therefore model-internal and fair; the
// reproduction target is the *shape* (rankings, A x T ordering), not
// absolute nanoseconds.

#include "fpga/lut_network.h"

namespace gfr::fpga {

struct TimingModel {
    double t_io_in = 2.8;          ///< pad + IBUF (ns)
    double t_io_out = 2.8;         ///< OBUF + pad (ns)
    double t_lut = 0.25;           ///< LUT6 logic delay (ns)
    double t_net_base = 0.45;      ///< minimum routed-net delay (ns)
    double t_net_fanout = 0.20;    ///< per-log2-fanout net-delay growth (ns)
    double congestion_factor = 0.20;
    double congestion_ref_luts = 33;  ///< the paper's smallest design (LUTs)

    [[nodiscard]] double congestion(int lut_count) const;
    [[nodiscard]] double net_delay(int fanout, double congestion_scale) const;
};

/// Critical path (ns) through the LUT network under the model.
double critical_path_ns(const LutNetwork& net, const TimingModel& model = {});

}  // namespace gfr::fpga

#endif  // GFR_FPGA_TIMING_MODEL_H
