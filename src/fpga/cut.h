#ifndef GFR_FPGA_CUT_H
#define GFR_FPGA_CUT_H

// Cuts for K-LUT technology mapping.  A cut of node v is a set of <= K nodes
// ("leaves") such that every path from the primary inputs to v passes through
// a leaf; the cone between leaves and v can then be implemented by one K-LUT.
// Cuts are built bottom-up by merging fanin cuts (Cong & Ding / ABC style).

#include "netlist/netlist.h"

#include <array>
#include <cstdint>
#include <optional>

namespace gfr::fpga {

struct Cut {
    static constexpr int kMaxLeaves = 6;

    std::array<netlist::NodeId, kMaxLeaves> leaves{};  // sorted, first `size`
    std::uint8_t size = 0;
    int depth = 0;          ///< LUT levels when this cut implements the node
    double area_flow = 0;   ///< estimated area share (lower = cheaper)
    std::uint64_t signature = 0;  ///< bloom filter of leaves for fast rejects

    /// Single-leaf cut {node} — the node seen as a leaf by its fanouts.
    static Cut trivial(netlist::NodeId node);

    /// Union of two cuts if it fits in `k` leaves; nullopt otherwise.
    static std::optional<Cut> merge(const Cut& a, const Cut& b, int k);

    [[nodiscard]] bool same_leaves(const Cut& other) const;

    /// True iff every leaf of `other` is also a leaf of *this (dominance:
    /// a smaller cut dominates a larger one with equal quality).
    [[nodiscard]] bool subset_of(const Cut& other) const;
};

}  // namespace gfr::fpga

#endif  // GFR_FPGA_CUT_H
