#include "fpga/cut.h"

#include <bit>

namespace gfr::fpga {

Cut Cut::trivial(netlist::NodeId node) {
    Cut c;
    c.leaves[0] = node;
    c.size = 1;
    c.signature = std::uint64_t{1} << (node % 64);
    return c;
}

std::optional<Cut> Cut::merge(const Cut& a, const Cut& b, int k) {
    if (std::popcount(a.signature | b.signature) > k) {
        return std::nullopt;  // at least popcount distinct leaves
    }
    Cut out;
    int ia = 0;
    int ib = 0;
    while (ia < a.size || ib < b.size) {
        netlist::NodeId next = 0;
        if (ia < a.size && ib < b.size) {
            if (a.leaves[static_cast<std::size_t>(ia)] < b.leaves[static_cast<std::size_t>(ib)]) {
                next = a.leaves[static_cast<std::size_t>(ia++)];
            } else if (b.leaves[static_cast<std::size_t>(ib)] <
                       a.leaves[static_cast<std::size_t>(ia)]) {
                next = b.leaves[static_cast<std::size_t>(ib++)];
            } else {
                next = a.leaves[static_cast<std::size_t>(ia)];
                ++ia;
                ++ib;
            }
        } else if (ia < a.size) {
            next = a.leaves[static_cast<std::size_t>(ia++)];
        } else {
            next = b.leaves[static_cast<std::size_t>(ib++)];
        }
        if (out.size == k) {
            return std::nullopt;
        }
        out.leaves[out.size++] = next;
    }
    out.signature = a.signature | b.signature;
    return out;
}

bool Cut::same_leaves(const Cut& other) const {
    if (size != other.size || signature != other.signature) {
        return false;
    }
    for (int i = 0; i < size; ++i) {
        if (leaves[static_cast<std::size_t>(i)] != other.leaves[static_cast<std::size_t>(i)]) {
            return false;
        }
    }
    return true;
}

bool Cut::subset_of(const Cut& other) const {
    if (size > other.size || (signature & ~other.signature) != 0) {
        return false;
    }
    int j = 0;
    for (int i = 0; i < size; ++i) {
        while (j < other.size &&
               other.leaves[static_cast<std::size_t>(j)] < leaves[static_cast<std::size_t>(i)]) {
            ++j;
        }
        if (j == other.size ||
            other.leaves[static_cast<std::size_t>(j)] != leaves[static_cast<std::size_t>(i)]) {
            return false;
        }
    }
    return true;
}

}  // namespace gfr::fpga
