#include "fpga/priority_cuts.h"

#include <algorithm>
#include <limits>
#include <span>
#include <stdexcept>
#include <unordered_map>

namespace gfr::fpga {

using netlist::GateKind;
using netlist::Netlist;
using netlist::NodeId;

namespace {

constexpr int kInfinity = std::numeric_limits<int>::max() / 2;

/// The classic 6-variable minterm masks: variable v of a <= 6-input cone.
constexpr std::uint64_t kVarMask[6] = {
    0xAAAAAAAAAAAAAAAAULL, 0xCCCCCCCCCCCCCCCCULL, 0xF0F0F0F0F0F0F0F0ULL,
    0xFF00FF00FF00FF00ULL, 0xFFFF0000FFFF0000ULL, 0xFFFFFFFF00000000ULL};

struct NodeState {
    std::vector<Cut> cuts;  // priority list; trivial cut appended last
    int best_depth = 0;
    double area_flow = 0;
    int est_refs = 1;
};

/// Truth table of the cone rooted at `root` with the given leaves, by
/// recursive evaluation over minterm masks.
std::uint64_t cone_truth(const Netlist& nl, NodeId root, const Cut& cut) {
    std::unordered_map<NodeId, std::uint64_t> value;
    for (int i = 0; i < cut.size; ++i) {
        value[cut.leaves[static_cast<std::size_t>(i)]] = kVarMask[i];
    }
    auto eval = [&](auto&& self, NodeId id) -> std::uint64_t {
        const auto it = value.find(id);
        if (it != value.end()) {
            return it->second;
        }
        const auto& n = nl.node(id);
        std::uint64_t v = 0;
        switch (n.kind) {
            case GateKind::Const0:
                v = 0;
                break;
            case GateKind::Input:
                throw std::logic_error{"cone_truth: reached an input that is not a leaf"};
            case GateKind::And2:
                v = self(self, n.a) & self(self, n.b);
                break;
            case GateKind::Xor2:
                v = self(self, n.a) ^ self(self, n.b);
                break;
        }
        value.emplace(id, v);
        return v;
    };
    return eval(eval, root);
}

}  // namespace

LutNetwork map_to_luts(const Netlist& nl, const MapperOptions& options) {
    if (options.lut_inputs < 2 || options.lut_inputs > Cut::kMaxLeaves) {
        throw std::invalid_argument{"map_to_luts: lut_inputs must be in [2,6]"};
    }
    const int k = options.lut_inputs;
    const auto reachable = nl.reachable_from_outputs();
    const auto fanout = nl.fanout_counts();

    std::vector<NodeState> state(nl.node_count());

    // ---- Forward pass: priority cuts, depth-first ordering. ----
    for (NodeId id = 0; id < nl.node_count(); ++id) {
        if (!reachable[id]) {
            continue;
        }
        auto& st = state[id];
        st.est_refs = std::max(1, fanout[id]);
        const auto& n = nl.node(id);
        if (n.kind == GateKind::Input || n.kind == GateKind::Const0) {
            st.best_depth = 0;
            st.area_flow = 0;
            st.cuts.push_back(Cut::trivial(id));
            continue;
        }

        // With hard boundaries, a multi-fanout gate fanin is only visible as
        // a leaf: its logic is instantiated once and never duplicated.
        const Cut trivial_a = Cut::trivial(n.a);
        const Cut trivial_b = Cut::trivial(n.b);
        auto fanin_cuts = [&](NodeId fanin,
                              const Cut& trivial) -> std::span<const Cut> {
            const auto& fn = nl.node(fanin);
            const bool boundary = options.respect_fanout_boundaries &&
                                  fanout[fanin] > 1 &&
                                  (fn.kind == GateKind::And2 || fn.kind == GateKind::Xor2);
            if (boundary) {
                return {&trivial, 1};
            }
            return {state[fanin].cuts.data(), state[fanin].cuts.size()};
        };

        std::vector<Cut> candidates;
        for (const auto& ca : fanin_cuts(n.a, trivial_a)) {
            for (const auto& cb : fanin_cuts(n.b, trivial_b)) {
                auto merged = Cut::merge(ca, cb, k);
                if (!merged) {
                    continue;
                }
                auto& cut = *merged;
                cut.depth = 0;
                cut.area_flow = 1.0;  // this LUT
                for (int i = 0; i < cut.size; ++i) {
                    const NodeId leaf = cut.leaves[static_cast<std::size_t>(i)];
                    cut.depth = std::max(cut.depth, state[leaf].best_depth);
                    cut.area_flow += state[leaf].area_flow;
                }
                cut.depth += 1;
                candidates.push_back(cut);
            }
        }
        // Dedupe identical leaf sets and drop dominated cuts.
        std::sort(candidates.begin(), candidates.end(), [](const Cut& x, const Cut& y) {
            if (x.depth != y.depth) {
                return x.depth < y.depth;
            }
            if (x.area_flow != y.area_flow) {
                return x.area_flow < y.area_flow;
            }
            return x.size < y.size;
        });
        std::vector<Cut> kept;
        for (const auto& c : candidates) {
            bool redundant = false;
            for (const auto& kc : kept) {
                if (kc.same_leaves(c) || (kc.subset_of(c) && kc.depth <= c.depth)) {
                    redundant = true;
                    break;
                }
            }
            if (!redundant) {
                kept.push_back(c);
                if (static_cast<int>(kept.size()) >= options.cuts_per_node) {
                    break;
                }
            }
        }
        if (kept.empty()) {
            throw std::logic_error{"map_to_luts: node has no feasible cut"};
        }
        // Guarantee an area-cheap alternative survives the depth-first prune,
        // so area recovery has something to pick on non-critical paths.
        const Cut* cheapest = &candidates.front();
        for (const auto& c : candidates) {
            if (c.area_flow < cheapest->area_flow) {
                cheapest = &c;
            }
        }
        bool have_cheapest = false;
        for (const auto& kc : kept) {
            if (kc.same_leaves(*cheapest)) {
                have_cheapest = true;
                break;
            }
        }
        if (!have_cheapest) {
            kept.back() = *cheapest;
        }
        st.best_depth = kept.front().depth;
        st.area_flow = kept.front().area_flow / st.est_refs;
        st.cuts = std::move(kept);
        st.cuts.push_back(Cut::trivial(id));  // visible to fanouts as a leaf
    }

    // ---- Required times. ----
    int global_depth = 0;
    for (const auto& out : nl.outputs()) {
        global_depth = std::max(global_depth, state[out.node].best_depth);
    }

    // ---- Backward covering with iterated area recovery. ----
    // Each round chooses, per required node, the min-area cut still meeting
    // its required time; leaf "area" is an area-flow estimate whose reference
    // counts come from the previous round's actual cover (classic if-mapper
    // area iteration).  Depth never degrades: the depth-best cut always
    // satisfies the required time.
    std::vector<bool> used(nl.node_count(), false);
    std::vector<const Cut*> chosen(nl.node_count(), nullptr);
    std::vector<double> area_est(nl.node_count(), 0.0);
    const int rounds = options.area_recovery ? 3 : 1;

    for (int round = 0; round < rounds; ++round) {
        // Refresh per-node area estimates with current est_refs.
        for (NodeId id = 0; id < nl.node_count(); ++id) {
            if (!reachable[id]) {
                continue;
            }
            const auto& n = nl.node(id);
            if (n.kind == GateKind::Input || n.kind == GateKind::Const0) {
                area_est[id] = 0.0;
                continue;
            }
            double best = 0.0;
            bool first = true;
            for (const auto& c : state[id].cuts) {
                if (c.size == 1 && c.leaves[0] == id) {
                    continue;
                }
                double af = 1.0;
                for (int i = 0; i < c.size; ++i) {
                    af += area_est[c.leaves[static_cast<std::size_t>(i)]];
                }
                if (first || af < best) {
                    best = af;
                    first = false;
                }
            }
            area_est[id] = best / state[id].est_refs;
        }

        std::vector<int> required(nl.node_count(), kInfinity);
        std::fill(used.begin(), used.end(), false);
        for (const auto& out : nl.outputs()) {
            required[out.node] = global_depth;
            const auto& n = nl.node(out.node);
            if (n.kind != GateKind::Input && n.kind != GateKind::Const0) {
                used[out.node] = true;
            }
        }
        for (NodeId idp = static_cast<NodeId>(nl.node_count()); idp-- > 0;) {
            if (!used[idp]) {
                continue;
            }
            const auto& st = state[idp];
            const Cut* pick = nullptr;
            double pick_area = 0.0;
            for (const auto& c : st.cuts) {
                if (c.size == 1 && c.leaves[0] == idp) {
                    continue;  // trivial cut cannot implement its own node
                }
                if (!options.area_recovery) {
                    pick = &c;  // cuts are depth-sorted; first is depth-best
                    break;
                }
                if (c.depth > required[idp]) {
                    continue;
                }
                double af = 1.0;
                for (int i = 0; i < c.size; ++i) {
                    af += area_est[c.leaves[static_cast<std::size_t>(i)]];
                }
                if (pick == nullptr || af < pick_area ||
                    (af == pick_area && c.depth < pick->depth)) {
                    pick = &c;
                    pick_area = af;
                }
            }
            if (pick == nullptr) {
                pick = &st.cuts.front();  // depth-best always meets required
            }
            chosen[idp] = pick;
            for (int i = 0; i < pick->size; ++i) {
                const NodeId leaf = pick->leaves[static_cast<std::size_t>(i)];
                const auto& ln = nl.node(leaf);
                if (ln.kind != GateKind::Input && ln.kind != GateKind::Const0) {
                    used[leaf] = true;
                }
                required[leaf] = std::min(required[leaf], required[idp] - 1);
            }
        }

        if (round + 1 < rounds) {
            // Re-estimate reference counts from the actual cover.
            std::vector<int> refs(nl.node_count(), 0);
            for (NodeId id = 0; id < nl.node_count(); ++id) {
                if (!used[id] || chosen[id] == nullptr) {
                    continue;
                }
                for (int i = 0; i < chosen[id]->size; ++i) {
                    ++refs[chosen[id]->leaves[static_cast<std::size_t>(i)]];
                }
            }
            for (const auto& out : nl.outputs()) {
                ++refs[out.node];
            }
            for (NodeId id = 0; id < nl.node_count(); ++id) {
                if (reachable[id]) {
                    state[id].est_refs = std::max(1, refs[id]);
                }
            }
        }
    }

    // ---- Emit the LUT network. ----
    LutNetwork net;
    net.input_names.reserve(nl.inputs().size());
    std::vector<std::int32_t> ref(nl.node_count(), LutNetwork::kConst0Ref);
    for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
        net.input_names.push_back(nl.inputs()[i].name);
        ref[nl.inputs()[i].node] = static_cast<std::int32_t>(i);
    }
    for (NodeId id = 0; id < nl.node_count(); ++id) {
        if (!used[id]) {
            continue;
        }
        const Cut& cut = *chosen[id];
        LutNetwork::Lut lut;
        lut.fanins.reserve(static_cast<std::size_t>(cut.size));
        for (int i = 0; i < cut.size; ++i) {
            lut.fanins.push_back(ref[cut.leaves[static_cast<std::size_t>(i)]]);
        }
        lut.truth = cone_truth(nl, id, cut);
        ref[id] = static_cast<std::int32_t>(net.input_names.size() + net.luts.size());
        net.luts.push_back(std::move(lut));
    }
    for (const auto& out : nl.outputs()) {
        net.outputs.emplace_back(out.name, ref[out.node]);
    }
    return net;
}

}  // namespace gfr::fpga
