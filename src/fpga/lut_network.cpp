#include "fpga/lut_network.h"

#include "exec/program.h"

#include <algorithm>
#include <stdexcept>

namespace gfr::fpga {

std::vector<int> LutNetwork::levels() const {
    std::vector<int> level(luts.size(), 0);
    for (std::size_t i = 0; i < luts.size(); ++i) {
        int max_in = 0;
        for (const auto ref : luts[i].fanins) {
            if (ref >= input_count()) {
                max_in = std::max(max_in, level[static_cast<std::size_t>(ref - input_count())]);
            }
        }
        level[i] = 1 + max_in;
    }
    return level;
}

int LutNetwork::depth() const {
    const auto level = levels();
    int out = 0;
    for (const auto& [name, ref] : outputs) {
        if (ref >= input_count()) {
            out = std::max(out, level[static_cast<std::size_t>(ref - input_count())]);
        }
    }
    return out;
}

std::vector<int> LutNetwork::fanout_counts() const {
    std::vector<int> fanout(input_names.size() + luts.size(), 0);
    for (const auto& lut : luts) {
        for (const auto ref : lut.fanins) {
            if (ref >= 0) {
                ++fanout[static_cast<std::size_t>(ref)];
            }
        }
    }
    for (const auto& [name, ref] : outputs) {
        if (ref >= 0) {
            ++fanout[static_cast<std::size_t>(ref)];
        }
    }
    return fanout;
}

std::vector<std::uint64_t> LutNetwork::simulate(
    std::span<const std::uint64_t> input_words) const {
    if (input_words.size() != input_names.size()) {
        throw std::invalid_argument{"LutNetwork::simulate: wrong number of input words"};
    }
    // Compile-and-run: the tape evaluates every LUT bitsliced (parity cones
    // as fused XORs, general cones as Shannon mux folds) instead of the old
    // per-lane truth-table walk.  Compilation is linear in the LUT count and
    // amortises within a single call; sweep loops that want to pay it once
    // hold an exec::Program themselves (see examples/reconfig_demo.cpp).
    const exec::Program prog = exec::Program::compile(*this);
    exec::Program::Scratch scratch;
    std::vector<std::uint64_t> out(outputs.size(), 0);
    prog.run(input_words, out, scratch);
    return out;
}

namespace {

std::string sanitize(const std::string& name) {
    std::string out;
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        out += ok ? c : '_';
    }
    if (out.empty()) {
        out = "p";
    }
    return out;
}

std::string hex64(std::uint64_t v) {
    static constexpr char kDigits[] = "0123456789abcdef";
    std::string out = "64'h";
    for (int shift = 60; shift >= 0; shift -= 4) {
        out += kDigits[(v >> shift) & 0xF];
    }
    return out;
}

}  // namespace

std::string emit_verilog_luts(const LutNetwork& net, const std::string& module_name) {
    std::string out = "module " + sanitize(module_name) + " (\n";
    for (const auto& name : net.input_names) {
        out += "  input  wire " + sanitize(name) + ",\n";
    }
    for (std::size_t i = 0; i < net.outputs.size(); ++i) {
        out += "  output wire " + sanitize(net.outputs[i].first);
        out += (i + 1 < net.outputs.size()) ? ",\n" : "\n";
    }
    out += ");\n";

    auto ref_name = [&](std::int32_t ref) -> std::string {
        if (ref < 0) {
            return "1'b0";
        }
        if (ref < net.input_count()) {
            return sanitize(net.input_names[static_cast<std::size_t>(ref)]);
        }
        return "lut" + std::to_string(ref - net.input_count());
    };

    for (std::size_t i = 0; i < net.luts.size(); ++i) {
        const auto& lut = net.luts[i];
        out += "  wire lut" + std::to_string(i) + ";\n";
        out += "  localparam [63:0] INIT" + std::to_string(i) + " = " + hex64(lut.truth) +
               ";\n";
        out += "  assign lut" + std::to_string(i) + " = INIT" + std::to_string(i) + "[{";
        for (std::size_t j = lut.fanins.size(); j-- > 0;) {
            out += ref_name(lut.fanins[j]);
            if (j > 0) {
                out += ", ";
            }
        }
        out += "}];\n";
    }
    for (const auto& [name, ref] : net.outputs) {
        out += "  assign " + sanitize(name) + " = " + ref_name(ref) + ";\n";
    }
    out += "endmodule\n";
    return out;
}

}  // namespace gfr::fpga
