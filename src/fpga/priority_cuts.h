#ifndef GFR_FPGA_PRIORITY_CUTS_H
#define GFR_FPGA_PRIORITY_CUTS_H

// Depth-oriented K-LUT technology mapping with priority cuts and area-flow
// recovery (the ABC "if -K 6" style mapper).  This is our stand-in for the
// LUT-mapping step of Xilinx XST targeting Artix-7 (6-input LUTs) with the
// paper's "speed high" optimisation goal:
//
//   1. forward pass: per node keep the `cuts_per_node` best cuts ordered by
//      (depth, area-flow); a node's depth is its best cut's depth;
//   2. global required time = max output depth (depth-optimal by
//      construction);
//   3. backward covering: every required node picks the cheapest (area-flow)
//      stored cut that still meets its required time, leaves become required
//      one level earlier — area recovery without losing depth.
//
// Truth tables for the chosen cones are computed by simulating the cone on
// the 6-variable minterm masks, so the mapping is checkable bit-for-bit
// against the gate netlist (and is checked, in tests).

#include "fpga/cut.h"
#include "fpga/lut_network.h"
#include "netlist/netlist.h"

namespace gfr::fpga {

struct MapperOptions {
    int lut_inputs = 6;     ///< K (Artix-7 LUT6)
    int cuts_per_node = 8;  ///< priority cut list length
    bool area_recovery = true;
    /// Treat every multi-fanout gate as a hard LUT boundary (no duplication
    /// of shared logic into consumers).  This is how a synthesis tool maps
    /// HDL whose *source structure* pins shared signals down — the paper's
    /// "as-given" methods — whereas flat equations (synthesis freedom) are
    /// mapped without boundaries.
    bool respect_fanout_boundaries = false;
};

/// Map the reachable logic of `nl` into a LUT network.  Primary input order
/// and output names/order are preserved.
LutNetwork map_to_luts(const netlist::Netlist& nl, const MapperOptions& options = {});

}  // namespace gfr::fpga

#endif  // GFR_FPGA_PRIORITY_CUTS_H
