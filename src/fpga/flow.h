#ifndef GFR_FPGA_FLOW_H
#define GFR_FPGA_FLOW_H

// End-to-end "FPGA implementation" flow: (optional) synthesis restructuring,
// LUT mapping, slice packing and timing — producing exactly the four numbers
// of the paper's Table V rows: LUTs, Slices, Time (ns), Area x Time.
//
// The synthesis_freedom switch is the experiment of the paper: methods whose
// HDL fixes the gate structure ([2],[3],[6],[7],[8]) are mapped as-given;
// the proposed flat formulation (Table IV) is mapped after the synthesiser
// is allowed to re-associate XOR trees and share common pairs.

#include "fpga/lut_network.h"
#include "fpga/priority_cuts.h"
#include "fpga/slice_pack.h"
#include "fpga/timing_model.h"
#include "netlist/netlist.h"
#include "netlist/passes.h"
#include "opt/opt.h"

namespace gfr::fpga {

struct FlowOptions {
    bool synthesis_freedom = false;  ///< run netlist::synthesize before mapping
    /// With synthesis freedom, try several restructurings (as-given, balance,
    /// pair-CSE, ANF flatten + CSE) and keep the best-A x T mapping — the way
    /// a synthesis tool explores strategies when the source does not pin the
    /// structure down.  Disable to force exactly the `synth` pipeline.
    bool strategy_search = true;
    netlist::SynthOptions synth{};
    /// Run the campaign-gated optimization pipeline (opt::optimize) on the
    /// netlist before any synthesis/mapping step.  Every pass is verified;
    /// opt::VerificationError propagates out of run_flow if one fails.
    bool optimize = false;
    opt::OptOptions opt{};
    MapperOptions mapper{};
    SliceOptions slices{};
    TimingModel timing{};
};

struct FlowResult {
    netlist::NetlistStats gate_stats;  ///< after optional synthesis
    int luts = 0;
    int lut_depth = 0;
    int slices = 0;
    double delay_ns = 0.0;
    double area_time = 0.0;  ///< LUTs x ns, the paper's A x T metric
    LutNetwork network;
};

FlowResult run_flow(const netlist::Netlist& nl, const FlowOptions& options = {});

}  // namespace gfr::fpga

#endif  // GFR_FPGA_FLOW_H
