#include "fpga/timing_model.h"

#include <algorithm>
#include <cmath>

namespace gfr::fpga {

double TimingModel::congestion(int lut_count) const {
    const double ratio =
        std::max(1.0, static_cast<double>(lut_count) / congestion_ref_luts);
    return 1.0 + congestion_factor * std::log2(ratio);
}

double TimingModel::net_delay(int fanout, double congestion_scale) const {
    return (t_net_base + t_net_fanout * std::log2(1.0 + static_cast<double>(fanout))) *
           congestion_scale;
}

double critical_path_ns(const LutNetwork& net, const TimingModel& model) {
    const double cong = model.congestion(net.lut_count());
    const auto fanout = net.fanout_counts();

    std::vector<double> arrival(net.input_names.size() + net.luts.size(), 0.0);
    for (std::size_t i = 0; i < net.input_names.size(); ++i) {
        arrival[i] = model.t_io_in;
    }
    for (std::size_t i = 0; i < net.luts.size(); ++i) {
        double worst = 0.0;
        for (const auto ref : net.luts[i].fanins) {
            if (ref < 0) {
                continue;  // constant
            }
            const double a = arrival[static_cast<std::size_t>(ref)] +
                             model.net_delay(fanout[static_cast<std::size_t>(ref)], cong);
            worst = std::max(worst, a);
        }
        arrival[net.input_names.size() + i] = worst + model.t_lut;
    }
    double path = 0.0;
    for (const auto& [name, ref] : net.outputs) {
        const double a = (ref < 0) ? 0.0 : arrival[static_cast<std::size_t>(ref)];
        path = std::max(path, a + model.net_delay(1, cong) + model.t_io_out);
    }
    return path;
}

}  // namespace gfr::fpga
