#include "fpga/flow.h"

#include <utility>
#include <vector>

namespace gfr::fpga {

namespace {

FlowResult map_and_measure(const netlist::Netlist& prepared, const FlowOptions& options) {
    FlowResult result;
    result.gate_stats = prepared.stats();
    result.network = map_to_luts(prepared, options.mapper);
    result.luts = result.network.lut_count();
    result.lut_depth = result.network.depth();
    result.slices = pack_slices(result.network, options.slices).n_slices;
    result.delay_ns = critical_path_ns(result.network, options.timing);
    result.area_time = result.luts * result.delay_ns;
    return result;
}

}  // namespace

FlowResult run_flow(const netlist::Netlist& nl, const FlowOptions& options) {
    if (options.optimize) {
        // Optimize once up front (verified pass by pass), then re-enter the
        // flow with the optimized netlist as the new source structure.
        opt::OptResult optimized = opt::optimize(nl, options.opt);
        FlowOptions rest = options;
        rest.optimize = false;
        return run_flow(optimized.netlist, rest);
    }
    if (!options.synthesis_freedom) {
        // Source structure is authoritative: the netlist is mapped exactly as
        // written.  The tool still chooses whether shared signals stay hard
        // LUT boundaries or may be duplicated into consumers; we grant it the
        // better of the two, but never any restructuring.
        const netlist::Netlist cleaned = netlist::dce(nl);
        FlowOptions bounded = options;
        bounded.mapper.respect_fanout_boundaries = true;
        FlowOptions duplicating = options;
        duplicating.mapper.respect_fanout_boundaries = false;
        FlowResult a = map_and_measure(cleaned, bounded);
        FlowResult b = map_and_measure(cleaned, duplicating);
        return (a.area_time <= b.area_time) ? std::move(a) : std::move(b);
    }
    if (!options.strategy_search) {
        return map_and_measure(netlist::synthesize(nl, options.synth), options);
    }
    // Strategy search: the synthesiser is free, so it evaluates several
    // restructurings and keeps whichever maps best.
    const std::vector<netlist::SynthOptions> strategies = {
        {.flatten_anf = false, .group_cones = false, .extract_pairs = false,
         .balance = false},  // as-given
        {.flatten_anf = false, .group_cones = false, .extract_pairs = false,
         .balance = true},   // depth-aware balance
        {.flatten_anf = false, .group_cones = false, .extract_pairs = true,
         .balance = true},   // pair CSE + balance
        {.flatten_anf = false, .group_cones = true, .extract_pairs = false,
         .balance = true},   // signature grouping, LUT-aware trees
        {.flatten_anf = true, .group_cones = false, .extract_pairs = false,
         .balance = true},   // per-output flat ANF, LUT-aware trees
        {.flatten_anf = false, .group_cones = true, .extract_pairs = true,
         .cse_min_count = 3, .balance = true},  // grouping + strongly-shared pairs
    };
    FlowResult best;
    bool first = true;
    for (const auto& synth : strategies) {
        FlowResult candidate =
            map_and_measure(netlist::synthesize(nl, synth), options);
        if (first || candidate.area_time < best.area_time) {
            best = std::move(candidate);
            first = false;
        }
    }
    return best;
}

}  // namespace gfr::fpga
