#ifndef GFR_FPGA_LUT_NETWORK_H
#define GFR_FPGA_LUT_NETWORK_H

// A mapped LUT network: the output of technology mapping, the input to slice
// packing and timing analysis.  Artix-7 style K <= 6 LUTs, each carrying its
// truth table (bit t of `truth` = output for input minterm t, fanin j being
// bit j of t).
//
// References (std::int32_t): 0..n_inputs-1 = primary inputs,
// n_inputs + i = LUT i, kConst0Ref = constant zero.

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace gfr::fpga {

struct LutNetwork {
    static constexpr std::int32_t kConst0Ref = -1;

    struct Lut {
        std::vector<std::int32_t> fanins;  // <= 6, topologically earlier refs
        std::uint64_t truth = 0;
    };

    std::vector<std::string> input_names;
    std::vector<Lut> luts;  // topological order
    std::vector<std::pair<std::string, std::int32_t>> outputs;

    [[nodiscard]] int lut_count() const noexcept { return static_cast<int>(luts.size()); }
    [[nodiscard]] int input_count() const noexcept {
        return static_cast<int>(input_names.size());
    }

    /// LUT level per LUT (inputs are level 0; a LUT is 1 + max fanin level).
    [[nodiscard]] std::vector<int> levels() const;

    /// Maximum output level ("logic depth" in LUTs).
    [[nodiscard]] int depth() const;

    /// Fanout per reference (inputs then LUTs); output pins count once each.
    [[nodiscard]] std::vector<int> fanout_counts() const;

    /// Word-parallel simulation: input_words[i] carries 64 lanes of input i;
    /// returns one word per output.  Used to prove mapping preserved the
    /// original netlist function.  Compiles the network to an exec::Program
    /// tape per call; hold an exec::Program (compile(*this)) to amortise
    /// compilation across a sweep loop.
    [[nodiscard]] std::vector<std::uint64_t> simulate(
        std::span<const std::uint64_t> input_words) const;
};

/// Verilog with one `assign` per LUT indexing a localparam INIT vector —
/// the LUT-level netlist a bitstream flow would consume.
std::string emit_verilog_luts(const LutNetwork& net, const std::string& module_name);

}  // namespace gfr::fpga

#endif  // GFR_FPGA_LUT_NETWORK_H
