#include "fpga/slice_pack.h"

#include <stdexcept>

namespace gfr::fpga {

SliceResult pack_slices(const LutNetwork& net, const SliceOptions& options) {
    if (options.luts_per_slice < 1) {
        throw std::invalid_argument{"pack_slices: luts_per_slice must be >= 1"};
    }
    SliceResult result;
    result.slice_of.assign(net.luts.size(), -1);
    std::vector<int> occupancy;  // per slice

    for (std::size_t i = 0; i < net.luts.size(); ++i) {
        // Prefer the fullest not-yet-full slice among the fanin LUTs' slices
        // (pack related logic tightly; unrelated logic never shares a slice).
        int best_slice = -1;
        for (const auto ref : net.luts[i].fanins) {
            if (ref < net.input_count()) {
                continue;  // primary input or constant
            }
            const int s = result.slice_of[static_cast<std::size_t>(ref - net.input_count())];
            if (s >= 0 && occupancy[static_cast<std::size_t>(s)] < options.luts_per_slice &&
                (best_slice < 0 || occupancy[static_cast<std::size_t>(s)] >
                                       occupancy[static_cast<std::size_t>(best_slice)])) {
                best_slice = s;
            }
        }
        if (best_slice < 0) {
            best_slice = static_cast<int>(occupancy.size());
            occupancy.push_back(0);
        }
        ++occupancy[static_cast<std::size_t>(best_slice)];
        result.slice_of[i] = best_slice;
    }

    // Merge phase: fold connected, partially-filled slices together until the
    // target fill is reached — the "packing pressure" a real placer applies.
    // Union-find over slice ids keeps the merging near-linear.
    std::vector<int> parent(occupancy.size());
    for (std::size_t i = 0; i < parent.size(); ++i) {
        parent[i] = static_cast<int>(i);
    }
    auto find = [&](int s) {
        while (parent[static_cast<std::size_t>(s)] != s) {
            parent[static_cast<std::size_t>(s)] =
                parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(s)])];
            s = parent[static_cast<std::size_t>(s)];
        }
        return s;
    };
    int live = static_cast<int>(occupancy.size());
    auto current_fill = [&] {
        return live == 0 ? 0.0
                         : static_cast<double>(net.luts.size()) /
                               (static_cast<double>(live) * options.luts_per_slice);
    };

    if (!net.luts.empty()) {
        bool merged_any = true;
        while (merged_any && current_fill() < options.target_fill) {
            merged_any = false;
            // Wire-connected slice pairs, smallest combined occupancy first.
            for (std::size_t i = 0; i < net.luts.size(); ++i) {
                const int si = find(result.slice_of[i]);
                for (const auto ref : net.luts[i].fanins) {
                    if (ref < net.input_count()) {
                        continue;
                    }
                    const int sj = find(
                        result.slice_of[static_cast<std::size_t>(ref - net.input_count())]);
                    if (si == sj) {
                        continue;
                    }
                    if (occupancy[static_cast<std::size_t>(si)] +
                            occupancy[static_cast<std::size_t>(sj)] <=
                        options.luts_per_slice) {
                        occupancy[static_cast<std::size_t>(si)] +=
                            occupancy[static_cast<std::size_t>(sj)];
                        occupancy[static_cast<std::size_t>(sj)] = 0;
                        parent[static_cast<std::size_t>(sj)] = si;
                        --live;
                        merged_any = true;
                        break;
                    }
                }
                if (current_fill() >= options.target_fill) {
                    break;
                }
            }
        }
        // Compact slice ids.
        std::vector<int> remap(parent.size(), -1);
        int next = 0;
        for (std::size_t i = 0; i < net.luts.size(); ++i) {
            const int root = find(result.slice_of[i]);
            if (remap[static_cast<std::size_t>(root)] < 0) {
                remap[static_cast<std::size_t>(root)] = next++;
            }
            result.slice_of[i] = remap[static_cast<std::size_t>(root)];
        }
        occupancy.assign(static_cast<std::size_t>(next), 0);
        for (const int s : result.slice_of) {
            ++occupancy[static_cast<std::size_t>(s)];
        }
    }

    result.n_slices = static_cast<int>(occupancy.size());
    result.avg_fill = occupancy.empty()
                          ? 0.0
                          : static_cast<double>(net.luts.size()) /
                                static_cast<double>(occupancy.size());
    return result;
}

}  // namespace gfr::fpga
