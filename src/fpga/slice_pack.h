#ifndef GFR_FPGA_SLICE_PACK_H
#define GFR_FPGA_SLICE_PACK_H

// Slice packing: clustering mapped LUTs into Artix-7 style slices (4 LUT6
// per slice).  A connectivity-driven greedy models the packer/placer: a LUT
// joins a slice that already hosts one of its fanins (keeping local routes
// local) when there is room, otherwise it opens a new slice.  Like the real
// tool flow, this leaves slices partially filled — Table V's observed
// LUTs-per-slice ratios are ~2.7-3.2, not the theoretical 4.

#include "fpga/lut_network.h"

namespace gfr::fpga {

struct SliceOptions {
    int luts_per_slice = 4;  ///< Artix-7: four 6-LUTs per slice
    /// Post-pass: merge connected, partially-filled slices until the mean
    /// fill reaches this fraction of capacity (or no legal merge remains).
    /// Table V's designs sit near 0.70-0.78 (2.8-3.1 LUTs per 4-LUT slice).
    double target_fill = 0.74;
};

struct SliceResult {
    int n_slices = 0;
    double avg_fill = 0;  ///< mean LUTs per occupied slice

    /// Slice index per LUT (same order as LutNetwork::luts).
    std::vector<int> slice_of;
};

SliceResult pack_slices(const LutNetwork& net, const SliceOptions& options = {});

}  // namespace gfr::fpga

#endif  // GFR_FPGA_SLICE_PACK_H
